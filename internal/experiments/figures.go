package experiments

import (
	"fmt"

	"hybridolap/internal/membench"
	"hybridolap/internal/perfmodel"
)

// fig3Sizes returns the cube-size axis in MB.
func fig3Sizes(opts Options) []float64 {
	max := 1024.0
	if opts.Quick {
		max = 64
	}
	var sizes []float64
	for mb := 1.0; mb <= max; mb *= 2 {
		sizes = append(sizes, mb)
	}
	return sizes
}

// Fig3 reproduces "Memory bandwidth for multithreaded OLAP cube processing
// by CPU": streaming-aggregation bandwidth versus cube size for 1, 4 and 8
// workers, measured on this host.
func Fig3(opts Options) (*Table, error) {
	sizes := fig3Sizes(opts)
	t := &Table{
		ID:      "fig3",
		Title:   "Memory bandwidth vs cube size (measured on this host)",
		Columns: []string{"size [MB]", "1 worker [GB/s]", "4 workers [GB/s]", "8 workers [GB/s]"},
		Notes: []string{
			"paper (dual Xeon X5667): 1T ~5 GB/s; 8T reaches 15-20 GB/s at >=128 MB",
			"shape to check: parallel bandwidth exceeds 1-worker bandwidth and flattens with size",
		},
	}
	byWorker := map[int][]membench.CPUPoint{}
	for _, w := range []int{1, 4, 8} {
		pts, err := membench.CPUSweep(sizes, w, 3, opts.seed())
		if err != nil {
			return nil, err
		}
		byWorker[w] = pts
	}
	for i := range sizes {
		t.Rows = append(t.Rows, []string{
			f(byWorker[1][i].SizeMB),
			f(byWorker[1][i].BandwidthMBs / 1024),
			f(byWorker[4][i].BandwidthMBs / 1024),
			f(byWorker[8][i].BandwidthMBs / 1024),
		})
	}
	return t, nil
}

// figSweep runs the Fig. 4/5 sweep for one worker count: measure
// processing time vs sub-cube size, fit the two-piece model, and compare
// against the paper's published coefficients.
func figSweep(opts Options, id string, workers int, paper perfmodel.CPUModel) (*Table, error) {
	sizes := fig3Sizes(opts)
	t := &Table{
		ID:      id,
		Title:   fmt.Sprintf("Cube processing time vs sub-cube size, %d workers", workers),
		Columns: []string{"size [MB]", "measured [s]", "fitted [s]", "paper model [s]"},
	}
	pts, err := membench.CPUSweep(sizes, workers, 3, opts.seed())
	if err != nil {
		return nil, err
	}
	fitPts := membench.CPUPointsForFit(pts)

	// Fit the paper's two-piece shape. The 512 MB break needs points on
	// both sides; a quick sweep stays in Range A and fits only the power
	// law, exactly as the paper handles its Range A.
	var model perfmodel.CPUModel
	haveB := false
	for _, p := range fitPts {
		if p.X >= perfmodel.PaperBreakMB {
			haveB = true
		}
	}
	if haveB {
		model, err = perfmodel.FitCPUModel(fitPts, perfmodel.PaperBreakMB)
		if err != nil {
			return nil, err
		}
		t.Notes = append(t.Notes, fmt.Sprintf(
			"fitted f_A = %.3g·x^%.4f, f_B = %.3g·x + %.3g  (paper: %.3g·x^%.4f, %.3g·x + %.3g)",
			model.A.Coef, model.A.Exp, model.B.Slope, model.B.Intercept,
			paper.A.Coef, paper.A.Exp, paper.B.Slope, paper.B.Intercept))
	} else {
		pl, err := perfmodel.FitPowerLaw(fitPts)
		if err != nil {
			return nil, err
		}
		model = perfmodel.CPUModel{BreakMB: perfmodel.PaperBreakMB, A: pl,
			B: perfmodel.Linear{Slope: pl.Eval(perfmodel.PaperBreakMB) / perfmodel.PaperBreakMB}}
		t.Notes = append(t.Notes, fmt.Sprintf(
			"quick sweep stays in Range A; fitted f_A = %.3g·x^%.4f (paper: %.3g·x^%.4f)",
			pl.Coef, pl.Exp, paper.A.Coef, paper.A.Exp))
	}
	r2 := perfmodel.RSquared(fitPts, model.Eval)
	t.Notes = append(t.Notes, fmt.Sprintf("fit R² = %.4f", r2))
	t.Notes = append(t.Notes,
		"absolute seconds are host times; the paper's coefficients are Xeon X5667 times —",
		"the shape to check is the power-law-then-linear growth and the fit quality")

	for _, p := range pts {
		t.Rows = append(t.Rows, []string{
			f(p.SizeMB), f(p.Seconds), f(model.Eval(p.SizeMB)), f(paper.Eval(p.SizeMB)),
		})
	}
	return t, nil
}

// Fig4 reproduces the 4-thread performance characteristic and its fitted
// estimation functions (eqs. 5–7).
func Fig4(opts Options) (*Table, error) {
	return figSweep(opts, "fig4", 4, perfmodel.PaperCPU4T)
}

// Fig5 reproduces the 8-thread performance characteristic (eqs. 8–10).
func Fig5(opts Options) (*Table, error) {
	return figSweep(opts, "fig5", 8, perfmodel.PaperCPU8T)
}

// Fig8 reproduces "Tesla C2070 performance for query processing for 1, 2
// and 4 SMs and for different number of searched columns": kernel time
// versus C/C_TOT per partition width, on the functional simulator, with
// the calibrated eq. 14 models alongside.
func Fig8(opts Options) (*Table, error) {
	rows := opts.pick(2_000_000, 200_000)
	pts, err := membench.GPUSweep(rows, []int{1, 2, 4}, 12, 3, opts.seed())
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig8",
		Title:   fmt.Sprintf("GPU partition query time vs C/C_TOT (%d-row table)", rows),
		Columns: []string{"SMs", "C/C_TOT", "measured [s]", "eq.14 model [s]"},
		Notes: []string{
			"measured = wall time of the functional scan kernels on this host",
			"model = the paper's published P_GPU used for scheduling",
			"shape to check: linear growth in C/C_TOT; model slope/intercept shrink with SMs",
		},
	}
	for _, p := range pts {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p.SMs), f(p.Fraction), f(p.Seconds), f(p.Estimated),
		})
	}
	// Per-width linear fits of the measured series.
	for _, sms := range []int{1, 2, 4} {
		m, err := perfmodel.FitGPUModel(membench.GPUPointsForFit(pts, sms))
		if err != nil {
			return nil, err
		}
		t.Notes = append(t.Notes, fmt.Sprintf(
			"%d SM measured fit: %.3g·(C/C_TOT) + %.3g", sms, m.Slope, m.Intercept))
	}
	return t, nil
}

// Fig9 reproduces "Dictionary search performance function for different
// sizes of dictionaries": per-lookup time versus dictionary length for the
// linear-scan dictionary, with the fitted line against eq. 17.
func Fig9(opts Options) (*Table, error) {
	sizes := []int{1_000, 4_000, 16_000, 64_000, 256_000, 1_000_000}
	lookups := 200
	if opts.Quick {
		sizes = []int{1_000, 4_000, 16_000, 64_000}
		lookups = 100
	}
	pts, err := membench.DictSweep(sizes, lookups)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig9",
		Title:   "Dictionary search time vs dictionary length (linear-scan dictionary)",
		Columns: []string{"entries", "per lookup [s]", "eq.17 model [s]"},
	}
	for _, p := range pts {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p.Entries), f(p.SecondsPerLookup), f(perfmodel.PaperDict.Eval(p.Entries)),
		})
	}
	m, err := perfmodel.FitDictModel(membench.DictPointsForFit(pts))
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("fitted slope %.3g s/entry (paper: 1.38e-08 s/entry)", m.SecondsPerEntry),
		"shape to check: linear through the origin",
	)
	return t, nil
}
