package cube

import (
	"fmt"

	"hybridolap/internal/table"
)

// Incremental cube maintenance for the streaming-ingest path: instead of
// rebuilding every pre-calculated cube on each ingested batch, the batch's
// rows are folded into small *shadow* cubes (one per registered level) and
// merged copy-on-write into the previous epoch's cubes. The merged cube
// shares every chunk the shadow did not touch with its predecessor — a
// published cube is immutable, so sharing is safe — and deep-copies only
// the touched chunks. Per-epoch cost is proportional to the batch's cell
// footprint, not the cube's.

// cloneDense returns a freshly allocated dense copy of the chunk (the
// receiver is never aliased by the result, unlike decompress on an
// already-dense chunk).
func (c *chunk) cloneDense(volume int) *chunk {
	if c == nil || c.dense == nil {
		return c.decompress(volume)
	}
	out := &chunk{dense: make([]Cell, volume), filled: c.filled}
	copy(out.dense, c.dense)
	return out
}

// MergeCOW returns a new cube equal to c with delta folded in. c is not
// modified: untouched chunks are shared by pointer, touched chunks are
// deep-copied, merged, and re-compressed under the 40% rule. Geometry,
// level and measure must match.
func (c *Cube) MergeCOW(delta *Cube) (*Cube, error) {
	if delta.level != c.level || delta.measure != c.measure {
		return nil, fmt.Errorf("cube: COW merge level/measure mismatch (%d/%d vs %d/%d)",
			delta.level, delta.measure, c.level, c.measure)
	}
	if len(delta.cards) != len(c.cards) || delta.side != c.side {
		return nil, fmt.Errorf("cube: COW merge geometry mismatch")
	}
	for d := range c.cards {
		if c.cards[d] != delta.cards[d] {
			return nil, fmt.Errorf("cube: COW merge cardinality mismatch in dimension %d", d)
		}
	}
	out := &Cube{
		level:   c.level,
		cards:   append([]int(nil), c.cards...),
		side:    c.side,
		grid:    append([]int(nil), c.grid...),
		vol:     c.vol,
		measure: c.measure,
		filled:  c.filled,
		rows:    c.rows + delta.rows,
	}
	out.chunks = append([]*chunk(nil), c.chunks...)
	for i, dch := range delta.chunks {
		if dch == nil {
			continue
		}
		ch := out.chunks[i].cloneDense(c.vol)
		fold := func(off uint32, cell Cell) {
			dst := &ch.dense[off]
			if dst.Count == 0 && cell.Count != 0 {
				ch.filled++
				out.filled++
			}
			dst.merge(cell)
		}
		if dch.isDense() {
			for off, cell := range dch.dense {
				if cell.Count != 0 {
					fold(uint32(off), cell)
				}
			}
		} else {
			for k, off := range dch.offsets {
				fold(off, dch.cells[k])
			}
		}
		out.chunks[i] = ch.compress()
	}
	return out, nil
}

// ShadowFromTable builds the shadow cubes of one delta stripe: one small
// cube per materialised level of the set, aggregating the set's measure.
// Levels with no real cube (virtual or absent) need no shadow.
func (s *Set) ShadowFromTable(ft *table.FactTable, cfg Config) (map[int]*Cube, error) {
	shadows := make(map[int]*Cube, len(s.cubes))
	for l := range s.cubes {
		sc, err := BuildFromTable(ft, l, s.measure, cfg)
		if err != nil {
			return nil, err
		}
		shadows[l] = sc
	}
	return shadows, nil
}

// MergeCOW returns a new set whose cube at each shadowed level is the COW
// merge of the receiver's cube with the shadow; all other levels (and the
// virtual registrations) carry over unchanged. The receiver is not
// modified — snapshots pinned on it stay consistent.
func (s *Set) MergeCOW(shadows map[int]*Cube) (*Set, error) {
	out := &Set{
		schema:  s.schema,
		measure: s.measure,
		cubes:   make(map[int]*Cube, len(s.cubes)),
		virtual: make(map[int]bool, len(s.virtual)),
		levels:  append([]int(nil), s.levels...),
	}
	for l, v := range s.virtual {
		out.virtual[l] = v
	}
	for l, c := range s.cubes {
		sh, ok := shadows[l]
		if !ok {
			out.cubes[l] = c
			continue
		}
		merged, err := c.MergeCOW(sh)
		if err != nil {
			return nil, fmt.Errorf("cube: level %d: %w", l, err)
		}
		out.cubes[l] = merged
	}
	for l := range shadows {
		if _, ok := s.cubes[l]; !ok {
			return nil, fmt.Errorf("cube: shadow for unregistered level %d", l)
		}
	}
	return out, nil
}
