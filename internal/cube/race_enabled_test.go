//go:build race

package cube

func init() { raceEnabled = true }
