package cube

import "sort"

// CompressThreshold is the fill factor below which a chunk is stored in
// chunk-offset compressed form. Zhao, Deshpande & Naughton "compress arrays
// that have less than 40% of their cells filled ... using a chunk-offset
// compression" (Sec. II-B); we follow the same rule.
const CompressThreshold = 0.40

// chunk is one n-dimensional tile of the cube. Exactly one of dense or
// (offsets, cells) is populated; a nil chunk means entirely empty.
type chunk struct {
	dense []Cell // row-major local cells, len = side^N

	// Chunk-offset compression: offsets are sorted local offsets of the
	// filled cells, cells the matching aggregates.
	offsets []uint32
	cells   []Cell

	filled int // number of non-empty cells
}

// isDense reports the storage form.
func (c *chunk) isDense() bool { return c.dense != nil }

// get returns the cell at the local offset (zero Cell when empty).
func (c *chunk) get(off uint32) Cell {
	if c == nil {
		return Cell{}
	}
	if c.dense != nil {
		return c.dense[off]
	}
	i := sort.Search(len(c.offsets), func(k int) bool { return c.offsets[k] >= off })
	if i < len(c.offsets) && c.offsets[i] == off {
		return c.cells[i]
	}
	return Cell{}
}

// bytes returns the storage footprint of the chunk.
func (c *chunk) bytes() int64 {
	if c == nil {
		return 0
	}
	if c.dense != nil {
		return int64(len(c.dense)) * CellSize
	}
	return int64(len(c.offsets))*4 + int64(len(c.cells))*CellSize
}

// compress converts a dense chunk to chunk-offset form when its fill factor
// is below CompressThreshold. Returns the possibly-replaced chunk.
func (c *chunk) compress() *chunk {
	if c == nil || c.dense == nil {
		return c
	}
	if c.filled == 0 {
		return nil
	}
	if float64(c.filled) >= CompressThreshold*float64(len(c.dense)) {
		return c
	}
	out := &chunk{
		offsets: make([]uint32, 0, c.filled),
		cells:   make([]Cell, 0, c.filled),
		filled:  c.filled,
	}
	for off, cell := range c.dense {
		if cell.Count != 0 {
			out.offsets = append(out.offsets, uint32(off))
			out.cells = append(out.cells, cell)
		}
	}
	return out
}

// decompress converts a compressed chunk back to dense form (used when a
// compressed chunk receives enough new cells during incremental builds).
func (c *chunk) decompress(volume int) *chunk {
	if c == nil {
		return &chunk{dense: make([]Cell, volume)}
	}
	if c.dense != nil {
		return c
	}
	out := &chunk{dense: make([]Cell, volume), filled: c.filled}
	for i, off := range c.offsets {
		out.dense[off] = c.cells[i]
	}
	return out
}
