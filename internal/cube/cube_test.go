package cube

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hybridolap/internal/table"
)

func testSchema() table.Schema {
	return table.Schema{
		Dimensions: []table.DimensionSpec{
			{Name: "time", Levels: []table.LevelSpec{
				{Name: "year", Cardinality: 3},
				{Name: "month", Cardinality: 36},
			}},
			{Name: "geo", Levels: []table.LevelSpec{
				{Name: "region", Cardinality: 5},
				{Name: "city", Cardinality: 50},
			}},
		},
		Measures: []table.MeasureSpec{{Name: "sales"}},
	}
}

func genTable(t testing.TB, rows int, seed int64) *table.FactTable {
	t.Helper()
	ft, err := table.Generate(table.GenSpec{Schema: testSchema(), Rows: rows, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return ft
}

// bruteAgg computes the expected aggregate directly from fact rows.
func bruteAgg(ft *table.FactTable, level int, box Box) Agg {
	var acc Agg
	s := ft.Schema()
	meas := ft.MeasureColumn(0)
	for r := 0; r < ft.Rows(); r++ {
		in := true
		for d := range s.Dimensions {
			l := level
			if l > s.Dimensions[d].Finest() {
				l = s.Dimensions[d].Finest()
			}
			x := ft.CoordAt(r, d, l)
			if x < box[d].From || x > box[d].To {
				in = false
				break
			}
		}
		if in {
			var c Cell
			c.add(meas[r])
			acc.fold(c)
		}
	}
	return acc
}

func aggEqual(a, b Agg) bool {
	if a.Count != b.Count {
		return false
	}
	if a.Count == 0 {
		return true
	}
	return math.Abs(a.Sum-b.Sum) < 1e-6 && a.Min == b.Min && a.Max == b.Max
}

func TestBuildFromTableCellsMatchBruteForce(t *testing.T) {
	ft := genTable(t, 2000, 1)
	c, err := BuildFromTable(ft, 1, 0, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if c.Rows() != 2000 {
		t.Fatalf("Rows = %d", c.Rows())
	}
	// Spot-check every cell against a brute-force pass.
	for m := uint32(0); m < 36; m += 7 {
		for g := uint32(0); g < 50; g += 11 {
			cell := c.Get([]uint32{m, g})
			want := bruteAgg(ft, 1, Box{{m, m}, {g, g}})
			got := Agg{Sum: cell.Sum, Count: cell.Count, Min: cell.Min, Max: cell.Max}
			if !aggEqual(got, want) {
				t.Fatalf("cell (%d,%d): got %+v want %+v", m, g, got, want)
			}
		}
	}
}

func TestParallelBuildEqualsSequential(t *testing.T) {
	ft := genTable(t, 5000, 2)
	seq, err := BuildFromTable(ft, 1, 0, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := BuildFromTable(ft, 1, 0, Config{Workers: 7})
	if err != nil {
		t.Fatal(err)
	}
	if seq.FilledCells() != par.FilledCells() || seq.Rows() != par.Rows() {
		t.Fatalf("filled/rows mismatch: seq (%d,%d) par (%d,%d)",
			seq.FilledCells(), seq.Rows(), par.FilledCells(), par.Rows())
	}
	full := Box{{0, 35}, {0, 49}}
	a, err := seq.Aggregate(full, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.Aggregate(full, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !aggEqual(a, b) {
		t.Fatalf("aggregate mismatch: %+v vs %+v", a, b)
	}
}

func TestAggregateMatchesBruteForce(t *testing.T) {
	ft := genTable(t, 3000, 3)
	c, err := BuildFromTable(ft, 1, 0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		f1 := uint32(rng.Intn(36))
		t1 := f1 + uint32(rng.Intn(36-int(f1)))
		f2 := uint32(rng.Intn(50))
		t2 := f2 + uint32(rng.Intn(50-int(f2)))
		box := Box{{f1, t1}, {f2, t2}}
		got, err := c.Aggregate(box, 1)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteAgg(ft, 1, box)
		if !aggEqual(got, want) {
			t.Fatalf("trial %d box %v: got %+v want %+v", trial, box, got, want)
		}
	}
}

func TestAggregateParallelEqualsSequential(t *testing.T) {
	ft := genTable(t, 4000, 5)
	c, err := BuildFromTable(ft, 1, 0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	box := Box{{3, 30}, {5, 45}}
	seq, err := c.Aggregate(box, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 8, 16} {
		par, err := c.Aggregate(box, w)
		if err != nil {
			t.Fatal(err)
		}
		if !aggEqual(seq, par) {
			t.Fatalf("workers=%d: %+v vs %+v", w, par, seq)
		}
	}
}

func TestAggregateValidation(t *testing.T) {
	ft := genTable(t, 100, 6)
	c, _ := BuildFromTable(ft, 0, 0, Config{})
	if _, err := c.Aggregate(Box{{0, 2}}, 1); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := c.Aggregate(Box{{2, 1}, {0, 0}}, 1); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := c.Aggregate(Box{{0, 99}, {0, 0}}, 1); err == nil {
		t.Error("out-of-range accepted")
	}
}

func TestCompressionRoundTrip(t *testing.T) {
	// A very sparse cube: every chunk should compress, and lookups and
	// aggregates must be unchanged.
	cards := []int{40, 40}
	c, err := newCube(0, cards, 16)
	if err != nil {
		t.Fatal(err)
	}
	pts := [][2]uint32{{0, 0}, {5, 7}, {17, 33}, {39, 39}, {20, 20}}
	for i, p := range pts {
		c.add([]uint32{p[0], p[1]}, float64(i+1))
	}
	before := make([]Cell, len(pts))
	for i, p := range pts {
		before[i] = c.Get([]uint32{p[0], p[1]})
	}
	c.compressAll()
	// All chunks must now be compressed (fill << 40%).
	for _, ch := range c.chunks {
		if ch != nil && ch.isDense() {
			t.Fatal("sparse chunk left dense after compressAll")
		}
	}
	for i, p := range pts {
		if got := c.Get([]uint32{p[0], p[1]}); got != before[i] {
			t.Fatalf("point %v changed by compression: %+v vs %+v", p, got, before[i])
		}
	}
	agg, err := c.Aggregate(Box{{0, 39}, {0, 39}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Count != int64(len(pts)) || agg.Sum != 15 || agg.Min != 1 || agg.Max != 5 {
		t.Fatalf("aggregate over compressed cube: %+v", agg)
	}
	// Partial box over a compressed chunk exercises offset decoding.
	agg, err = c.Aggregate(Box{{4, 18}, {6, 34}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Count != 2 || agg.Sum != 2+3 {
		t.Fatalf("partial compressed aggregate: %+v", agg)
	}
	if c.StorageBytes() >= c.LogicalBytes() {
		t.Fatalf("compression did not shrink storage: %d vs %d", c.StorageBytes(), c.LogicalBytes())
	}
}

// TestBuildSyntheticInjectedRng checks that an injected Config.Rng seeded
// S builds the same cube as the seed argument S with a nil Rng: the two
// configuration styles are interchangeable without losing bit-level
// reproducibility.
func TestBuildSyntheticInjectedRng(t *testing.T) {
	seeded, err := BuildSynthetic(0, []int{32, 32}, 0.4, 9, Config{})
	if err != nil {
		t.Fatal(err)
	}
	injected, err := BuildSynthetic(0, []int{32, 32}, 0.4, 0, Config{Rng: rand.New(rand.NewSource(9))})
	if err != nil {
		t.Fatal(err)
	}
	if seeded.FilledCells() != injected.FilledCells() {
		t.Fatalf("filled cells diverged: %d vs %d", seeded.FilledCells(), injected.FilledCells())
	}
	coords := []uint32{0, 0}
	for x := uint32(0); x < 32; x++ {
		for y := uint32(0); y < 32; y++ {
			coords[0], coords[1] = x, y
			a, b := seeded.Get(coords), injected.Get(coords)
			if a != b {
				t.Fatalf("cell (%d,%d) diverged: %+v vs %+v", x, y, a, b)
			}
		}
	}
}

func TestDenseChunksStayDense(t *testing.T) {
	// A fully filled cube must keep dense chunks (fill = 100% > 40%).
	c, err := BuildSynthetic(0, []int{16, 16}, 1.0, 1, Config{Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, ch := range c.chunks {
		if ch != nil && !ch.isDense() {
			t.Fatal("full chunk was compressed")
		}
	}
	if c.FillFactor() != 1.0 {
		t.Fatalf("FillFactor = %v", c.FillFactor())
	}
}

func TestEdgeChunks(t *testing.T) {
	// Cards not a multiple of the chunk side: 20 with side 16 leaves a
	// 4-wide edge chunk. Aggregates must still be exact.
	cards := []int{20, 20}
	c, _ := newCube(0, cards, 16)
	var wantSum float64
	for x := 0; x < 20; x++ {
		for y := 0; y < 20; y++ {
			v := float64(x*100 + y)
			c.add([]uint32{uint32(x), uint32(y)}, v)
			wantSum += v
		}
	}
	agg, err := c.Aggregate(Box{{0, 19}, {0, 19}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Count != 400 || agg.Sum != wantSum {
		t.Fatalf("edge aggregate: %+v, want count 400 sum %v", agg, wantSum)
	}
	// Box straddling the edge chunk boundary.
	agg, _ = c.Aggregate(Box{{15, 19}, {14, 17}}, 1)
	if agg.Count != 5*4 {
		t.Fatalf("straddling box count = %d, want 20", agg.Count)
	}
}

func TestSyntheticFillFactor(t *testing.T) {
	c, err := BuildSynthetic(0, []int{64, 64}, 0.3, 7, Config{Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	ff := c.FillFactor()
	if ff < 0.25 || ff > 0.35 {
		t.Fatalf("FillFactor = %v, want ~0.3", ff)
	}
}

func TestAggMergeAndAvg(t *testing.T) {
	var a, b Agg
	var c1, c2 Cell
	c1.add(10)
	c1.add(20)
	c2.add(5)
	a.fold(c1)
	b.fold(c2)
	m := a.Merge(b)
	if m.Sum != 35 || m.Count != 3 || m.Min != 5 || m.Max != 20 {
		t.Fatalf("merge = %+v", m)
	}
	if m.Avg() != 35.0/3.0 {
		t.Fatalf("avg = %v", m.Avg())
	}
	if (Agg{}).Avg() != 0 {
		t.Fatal("empty avg should be 0")
	}
	if got := (Agg{}).Merge(m); got != m {
		t.Fatalf("empty merge = %+v", got)
	}
	if got := m.Merge(Agg{}); got != m {
		t.Fatalf("merge empty = %+v", got)
	}
}

func TestBoxGeometry(t *testing.T) {
	b := Box{{0, 9}, {5, 5}}
	if b.Cells() != 10 {
		t.Fatalf("Cells = %d", b.Cells())
	}
	if b.Bytes() != 10*CellSize {
		t.Fatalf("Bytes = %d", b.Bytes())
	}
	if (Range{5, 2}).Width() != 0 {
		t.Fatal("inverted range width should be 0")
	}
}

func TestSetPickAndAggregate(t *testing.T) {
	ft := genTable(t, 3000, 8)
	set, err := BuildSet(ft, []int{0, 1}, 0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := set.Levels(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("Levels = %v", got)
	}
	// R=0 should pick the coarse cube (level 0).
	l, ok := set.PickLevel(0)
	if !ok || l != 0 {
		t.Fatalf("PickLevel(0) = %d", l)
	}
	// R=1 picks level 1.
	l, ok = set.PickLevel(1)
	if !ok || l != 1 {
		t.Fatalf("PickLevel(1) = %d", l)
	}
	// R=2 is too fine: must go to GPU.
	if _, ok = set.PickLevel(2); ok {
		t.Fatal("PickLevel(2) should fail")
	}

	// A level-0 query answered via the set must equal brute force.
	box := Box{{0, 1}, {1, 3}}
	agg, used, err := set.Aggregate(box, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if used.Level() != 0 {
		t.Fatalf("used cube level %d, want 0", used.Level())
	}
	want := bruteAgg(ft, 0, box)
	if !aggEqual(agg, want) {
		t.Fatalf("set aggregate %+v, want %+v", agg, want)
	}
}

func TestSetAnswersCoarseQueryFromFineCube(t *testing.T) {
	// Remove the level-0 cube so a level-0 query must expand into level 1.
	ft := genTable(t, 3000, 9)
	set, err := BuildSet(ft, []int{1}, 0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	box := Box{{0, 1}, {2, 4}} // level-0 coords: years 0-1, regions 2-4
	agg, used, err := set.Aggregate(box, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if used.Level() != 1 {
		t.Fatalf("used level %d, want 1", used.Level())
	}
	want := bruteAgg(ft, 0, box)
	if !aggEqual(agg, want) {
		t.Fatalf("expanded aggregate %+v, want %+v", agg, want)
	}
}

func TestExpandBox(t *testing.T) {
	ft := genTable(t, 10, 10)
	set, _ := BuildSet(ft, []int{1}, 0, Config{})
	// time: year->month ratio 12; geo: region->city ratio 10.
	eb, err := set.ExpandBox(Box{{1, 2}, {0, 0}}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if eb[0].From != 12 || eb[0].To != 35 || eb[1].From != 0 || eb[1].To != 9 {
		t.Fatalf("ExpandBox = %v", eb)
	}
	// Cannot answer fine query at a coarser level.
	if _, err := set.ExpandBox(Box{{0, 0}, {0, 0}}, 1, 0); err == nil {
		t.Fatal("coarse level accepted fine query")
	}
	// Dimension-count mismatch.
	if _, err := set.ExpandBox(Box{{0, 0}}, 0, 1); err == nil {
		t.Fatal("short box accepted")
	}
}

func TestVirtualLevels(t *testing.T) {
	ft := genTable(t, 500, 21)
	set, err := BuildSet(ft, []int{0}, 0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := set.AddVirtual(1); err != nil {
		t.Fatal(err)
	}
	if err := set.AddVirtual(-1); err == nil {
		t.Fatal("negative virtual level accepted")
	}
	if !set.IsVirtual(1) || set.IsVirtual(0) {
		t.Fatal("IsVirtual wrong")
	}
	if got := set.Levels(); len(got) != 2 || got[1] != 1 {
		t.Fatalf("Levels = %v", got)
	}
	// Size estimation works on the virtual level.
	n, ok := set.SubCubeBytes(Box{{0, 0}, {0, 4}}, 1) // 1 month x 5 cities at level 1
	if !ok || n != 5*CellSize {
		t.Fatalf("virtual SubCubeBytes = (%d,%v)", n, ok)
	}
	// Aggregation on the virtual level fails with a clear error.
	if _, _, err := set.Aggregate(Box{{0, 0}, {0, 0}}, 1, 1); err == nil {
		t.Fatal("aggregate on virtual level accepted")
	}
	// Adding a real cube upgrades the virtual level.
	c1, _ := BuildFromTable(ft, 1, 0, Config{})
	if err := set.Add(c1); err != nil {
		t.Fatal(err)
	}
	if set.IsVirtual(1) {
		t.Fatal("level still virtual after Add")
	}
	if _, _, err := set.Aggregate(Box{{0, 0}, {0, 0}}, 1, 1); err != nil {
		t.Fatal(err)
	}
	// AddVirtual on a real level is a no-op.
	if err := set.AddVirtual(1); err != nil || set.IsVirtual(1) {
		t.Fatal("AddVirtual demoted a real level")
	}
}

func TestLogicalBytesAt(t *testing.T) {
	ft := genTable(t, 10, 22)
	set := NewSet(ft.Schema())
	// Level 0: 3 years x 5 regions = 15 cells.
	if got := set.LogicalBytesAt(0); got != 15*CellSize {
		t.Fatalf("LogicalBytesAt(0) = %d", got)
	}
	// Level 1: 36 x 50 = 1800 cells.
	if got := set.LogicalBytesAt(1); got != 1800*CellSize {
		t.Fatalf("LogicalBytesAt(1) = %d", got)
	}
}

func TestSubCubeBytes(t *testing.T) {
	ft := genTable(t, 10, 11)
	set, _ := BuildSet(ft, []int{0, 1}, 0, Config{})
	// Level-0 query 2x3 box answered at level 0: 6 cells.
	n, ok := set.SubCubeBytes(Box{{0, 1}, {0, 2}}, 0)
	if !ok || n != 6*CellSize {
		t.Fatalf("SubCubeBytes = (%d,%v)", n, ok)
	}
	// Level-2 query: no cube.
	if _, ok := set.SubCubeBytes(Box{{0, 0}, {0, 0}}, 2); ok {
		t.Fatal("SubCubeBytes for missing level should fail")
	}
}

func TestSetAddValidation(t *testing.T) {
	ft := genTable(t, 10, 12)
	set := NewSet(ft.Schema())
	// Wrong geometry: cube over different cards.
	c, _ := BuildSynthetic(0, []int{7, 7}, 1, 1, Config{})
	if err := set.Add(c); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
	// Duplicate level replaces without growing Levels().
	c0, _ := BuildFromTable(ft, 0, 0, Config{})
	if err := set.Add(c0); err != nil {
		t.Fatal(err)
	}
	if err := set.Add(c0); err != nil {
		t.Fatal(err)
	}
	if len(set.Levels()) != 1 {
		t.Fatalf("Levels = %v", set.Levels())
	}
}

func TestLevelClampBeyondFinest(t *testing.T) {
	// Level 5 clamps to each dimension's finest level.
	ft := genTable(t, 500, 13)
	c, err := BuildFromTable(ft, 5, 0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Cards()[0] != 36 || c.Cards()[1] != 50 {
		t.Fatalf("clamped cards = %v", c.Cards())
	}
}

// Property: random boxes over a cube built at any level match brute force.
func TestCubeBruteForceProperty(t *testing.T) {
	ft := genTable(t, 1500, 14)
	cubes := map[int]*Cube{}
	for _, l := range []int{0, 1} {
		c, err := BuildFromTable(ft, l, 0, Config{})
		if err != nil {
			t.Fatal(err)
		}
		cubes[l] = c
	}
	f := func(lvl bool, a1, b1, a2, b2 uint16, workers uint8) bool {
		level := 0
		if lvl {
			level = 1
		}
		c := cubes[level]
		cards := c.Cards()
		norm := func(a, b uint16, card int) Range {
			f := uint32(a) % uint32(card)
			t := uint32(b) % uint32(card)
			if t < f {
				f, t = t, f
			}
			return Range{f, t}
		}
		box := Box{norm(a1, b1, cards[0]), norm(a2, b2, cards[1])}
		got, err := c.Aggregate(box, int(workers%5)+1)
		if err != nil {
			return false
		}
		return aggEqual(got, bruteAgg(ft, level, box))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAggregateSeq(b *testing.B) {
	c, err := BuildSynthetic(0, []int{256, 256, 64}, 0.9, 3, Config{Compress: true})
	if err != nil {
		b.Fatal(err)
	}
	box := Box{{0, 255}, {0, 255}, {0, 63}}
	b.SetBytes(box.Bytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Aggregate(box, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAggregatePar(b *testing.B) {
	c, err := BuildSynthetic(0, []int{256, 256, 64}, 0.9, 3, Config{Compress: true})
	if err != nil {
		b.Fatal(err)
	}
	box := Box{{0, 255}, {0, 255}, {0, 63}}
	b.SetBytes(box.Bytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Aggregate(box, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildFromTable1W(b *testing.B) {
	ft := genTable(b, 200_000, 99)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildFromTable(ft, 1, 0, Config{Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildFromTable8W(b *testing.B) {
	ft := genTable(b, 200_000, 99)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildFromTable(ft, 1, 0, Config{Workers: 8}); err != nil {
			b.Fatal(err)
		}
	}
}
