package cube

import (
	"fmt"
	"sort"

	"hybridolap/internal/table"
)

// Iceberg is a bottom-up-computed iceberg cube (Beyer & Ramakrishnan [1],
// the BUC algorithm the paper's Sec. II-A describes): every group-by of
// the full 2^N lattice, restricted to cells supported by at least MinSup
// fact rows. Where the dense array cube materialises one group-by per
// resolution, BUC materialises the whole lattice but prunes unsupported
// cells — the classic trade-off for sparse, high-dimensional data.
type Iceberg struct {
	dims   int
	level  int
	minSup int
	cells  map[icebergKey]Agg
}

// icebergKey identifies one lattice cell: mask has bit d set when
// dimension d is grouped (not aggregated away), and key packs the grouped
// coordinates, 16 bits each, in dimension order.
type icebergKey struct {
	mask uint8
	key  uint64
}

// MaxIcebergDims bounds the lattice so keys pack into a uint64.
const MaxIcebergDims = 4

// BuildIceberg runs BUC over the fact table at the given resolution level:
// recursive partitioning dimension by dimension, descending only into
// partitions with at least minSup rows ("the bottom up algorithm
// aggregates and sorts based on a single dimension [and] recursively
// partitions the current results", Sec. II-A).
func BuildIceberg(ft *table.FactTable, level, measure, minSup int) (*Iceberg, error) {
	s := ft.Schema()
	if len(s.Dimensions) > MaxIcebergDims {
		return nil, fmt.Errorf("cube: BUC supports at most %d dimensions, schema has %d",
			MaxIcebergDims, len(s.Dimensions))
	}
	if measure < 0 || measure >= len(s.Measures) {
		return nil, fmt.Errorf("cube: measure %d out of range", measure)
	}
	if minSup < 1 {
		return nil, fmt.Errorf("cube: minSup must be >= 1, got %d", minSup)
	}
	nd := len(s.Dimensions)
	// Per-dimension level (clamped) and cardinality check for packing.
	lvl := make([]int, nd)
	for d, dim := range s.Dimensions {
		lvl[d] = level
		if lvl[d] > dim.Finest() {
			lvl[d] = dim.Finest()
		}
		if dim.Levels[lvl[d]].Cardinality > 0x10000 {
			return nil, fmt.Errorf("cube: BUC cardinality %d exceeds 65536 in %q",
				dim.Levels[lvl[d]].Cardinality, dim.Name)
		}
	}

	// Materialise the projected input once.
	rows := ft.Rows()
	coords := make([][]uint32, nd)
	for d := 0; d < nd; d++ {
		coords[d] = ft.DimLevelColumn(d, lvl[d])
	}
	meas := ft.MeasureColumn(measure)

	ic := &Iceberg{dims: nd, level: level, minSup: minSup, cells: make(map[icebergKey]Agg)}

	idx := make([]int32, rows)
	for i := range idx {
		idx[i] = int32(i)
	}

	// prefix state for the recursion.
	var mask uint8
	var key uint64
	shift := make([]uint, nd) // key bit position of each dim when grouped

	var buc func(part []int32, startDim int)
	buc = func(part []int32, startDim int) {
		// Emit the aggregate of the current prefix cell.
		var agg Agg
		for _, r := range part {
			var c Cell
			c.add(meas[r])
			agg.fold(c)
		}
		ic.cells[icebergKey{mask: mask, key: key}] = agg

		for d := startDim; d < nd; d++ {
			col := coords[d]
			// Partition part by coordinate in dimension d.
			sort.Slice(part, func(i, j int) bool { return col[part[i]] < col[part[j]] })
			lo := 0
			for lo < len(part) {
				hi := lo
				v := col[part[lo]]
				for hi < len(part) && col[part[hi]] == v {
					hi++
				}
				if hi-lo >= minSup {
					// Descend with dimension d grouped at coordinate v.
					shift[d] = 0
					oldMask, oldKey := mask, key
					mask |= 1 << d
					// Re-pack key: coordinates of grouped dims in dim order.
					key = repack(mask, oldMask, oldKey, d, v)
					buc(part[lo:hi], d+1)
					mask, key = oldMask, oldKey
				}
				lo = hi
			}
		}
	}
	buc(idx, 0)
	return ic, nil
}

// repack inserts coordinate v for newly grouped dimension d into the
// packed key, keeping grouped coordinates in dimension order (16 bits
// each, lowest dimension in the highest bits).
func repack(newMask, oldMask uint8, oldKey uint64, d int, v uint32) uint64 {
	// Decode oldKey according to oldMask.
	var oldCoords [MaxIcebergDims]uint32
	k := oldKey
	for dd := MaxIcebergDims - 1; dd >= 0; dd-- {
		if oldMask&(1<<dd) != 0 {
			oldCoords[dd] = uint32(k & 0xFFFF)
			k >>= 16
		}
	}
	oldCoords[d] = v
	// Re-encode according to newMask.
	var key uint64
	for dd := 0; dd < MaxIcebergDims; dd++ {
		if newMask&(1<<dd) != 0 {
			key = key<<16 | uint64(oldCoords[dd]&0xFFFF)
		}
	}
	return key
}

// NumCells returns the number of materialised (supported) cells across the
// whole lattice, including the all-aggregated apex.
func (ic *Iceberg) NumCells() int { return len(ic.cells) }

// MinSup returns the iceberg threshold.
func (ic *Iceberg) MinSup() int { return ic.minSup }

// Get looks up one lattice cell: coords[d] is the coordinate of dimension
// d, or -1 when d is aggregated away ("ALL"). ok is false when the cell
// was pruned (support below MinSup) or never existed.
func (ic *Iceberg) Get(coords []int32) (Agg, bool) {
	if len(coords) != ic.dims {
		return Agg{}, false
	}
	var mask uint8
	var key uint64
	for d, c := range coords {
		if c < 0 {
			continue
		}
		mask |= 1 << d
		key = key<<16 | uint64(uint32(c)&0xFFFF)
	}
	agg, ok := ic.cells[icebergKey{mask: mask, key: key}]
	return agg, ok
}

// Apex returns the grand-total aggregate (every dimension ALL).
func (ic *Iceberg) Apex() Agg {
	agg, _ := ic.cells[icebergKey{}]
	return agg
}
