package cube

import (
	"testing"
)

func TestLatticeMatchesIceberg(t *testing.T) {
	// With minSup=1 the BUC iceberg is the full lattice: both structures
	// must agree cell for cell.
	ft := genTable(t, 400, 111)
	lat, err := BuildLattice(ft, 0, 0, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ic, err := BuildIceberg(ft, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lat.NumCells() != ic.NumCells() {
		t.Fatalf("cells: lattice %d vs iceberg %d", lat.NumCells(), ic.NumCells())
	}
	// Spot-check every cell of every mask via iceberg enumeration is
	// awkward; instead probe a dense grid of coordinate combinations.
	for y := int32(-1); y < 3; y++ {
		for r := int32(-1); r < 5; r++ {
			coords := []int32{y, r}
			a, aok := lat.Get(coords)
			b, bok := ic.Get(coords)
			if aok != bok {
				t.Fatalf("cell %v: lattice ok=%v iceberg ok=%v", coords, aok, bok)
			}
			if aok && !aggEqual(a, b) {
				t.Fatalf("cell %v: %+v vs %+v", coords, a, b)
			}
		}
	}
	if lat.Apex().Count != 400 {
		t.Fatalf("apex = %+v", lat.Apex())
	}
}

func TestLatticeParallelEqualsSequential(t *testing.T) {
	ft := genTable(t, 1000, 112)
	seq, err := BuildLattice(ft, 1, 0, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := BuildLattice(ft, 1, 0, Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if seq.NumCells() != par.NumCells() {
		t.Fatalf("cells %d vs %d", seq.NumCells(), par.NumCells())
	}
	for y := int32(-1); y < 36; y += 7 {
		for c := int32(-1); c < 50; c += 11 {
			a, aok := seq.Get([]int32{y, c})
			b, bok := par.Get([]int32{y, c})
			if aok != bok || (aok && !aggEqual(a, b)) {
				t.Fatalf("cell (%d,%d) differs", y, c)
			}
		}
	}
}

func TestLatticeSmallestParentSavesWork(t *testing.T) {
	// Aggregating from parents must touch far fewer cells than recomputing
	// every group-by from the fact table (naive cost = 2^N × rows).
	ft := genTable(t, 5000, 113)
	lat, err := BuildLattice(ft, 1, 0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	naive := int64(4 * 5000) // 2^2 group-bys × rows
	if lat.CellsAggregated() >= naive {
		t.Fatalf("smallest-parent did not save work: %d >= %d", lat.CellsAggregated(), naive)
	}
}

func TestLatticeValidation(t *testing.T) {
	ft := genTable(t, 10, 114)
	if _, err := BuildLattice(ft, 0, 9, Config{}); err == nil {
		t.Fatal("bad measure accepted")
	}
	lat, _ := BuildLattice(ft, 0, 0, Config{})
	if _, ok := lat.Get([]int32{0}); ok {
		t.Fatal("wrong-arity Get accepted")
	}
	if _, ok := lat.Get([]int32{99, 99}); ok {
		t.Fatal("phantom cell found")
	}
}

func BenchmarkBuildLattice(b *testing.B) {
	ft := genTable(b, 50_000, 115)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildLattice(ft, 1, 0, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}
