package cube

import (
	"bytes"
	"testing"
)

func TestCubeSaveLoadRoundTrip(t *testing.T) {
	ft := genTable(t, 1500, 71)
	orig, err := BuildFromTable(ft, 1, 0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCube(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cubesEquivalent(t, got, orig)
	if got.Measure() != orig.Measure() || got.StorageBytes() != orig.StorageBytes() {
		t.Fatalf("metadata differs: measure %d/%d storage %d/%d",
			got.Measure(), orig.Measure(), got.StorageBytes(), orig.StorageBytes())
	}
	// Aggregates agree.
	box := Box{{3, 30}, {5, 44}}
	a, err := orig.Aggregate(box, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := got.Aggregate(box, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !aggEqual(a, b) {
		t.Fatalf("aggregate differs: %+v vs %+v", a, b)
	}
}

func TestCubeSaveLoadMixedChunkKinds(t *testing.T) {
	// A cube with dense, compressed and empty chunks.
	c, err := newCube(0, []int{48, 48}, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Fill chunk (0,0) fully -> dense.
	for x := uint32(0); x < 16; x++ {
		for y := uint32(0); y < 16; y++ {
			c.add([]uint32{x, y}, 1)
		}
	}
	// Two cells in chunk (1,1) -> compressed.
	c.add([]uint32{17, 18}, 5)
	c.add([]uint32{20, 30}, 7)
	c.compressAll()

	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCube(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cubesEquivalent(t, got, c)
	if got.chunks[0] == nil || !got.chunks[0].isDense() {
		t.Fatal("dense chunk lost its form")
	}
	var comp *chunk
	for _, ch := range got.chunks {
		if ch != nil && !ch.isDense() {
			comp = ch
		}
	}
	if comp == nil || len(comp.offsets) != 2 {
		t.Fatal("compressed chunk lost its form")
	}
}

func TestCubeLoadRejectsCorruption(t *testing.T) {
	ft := genTable(t, 200, 72)
	orig, _ := BuildFromTable(ft, 0, 0, Config{})
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	tampered := append([]byte(nil), data...)
	tampered[len(tampered)-9] ^= 0xFF
	if _, err := LoadCube(bytes.NewReader(tampered)); err == nil {
		t.Fatal("corrupted cube accepted")
	}
	if _, err := LoadCube(bytes.NewReader(data[:10])); err == nil {
		t.Fatal("truncated cube accepted")
	}
	bad := append([]byte(nil), data...)
	bad[4] = 'Z'
	if _, err := LoadCube(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestCubeLoadValidatesGeometry(t *testing.T) {
	// Hand-build a header with an impossible chunk count by saving a real
	// cube and flipping the chunk-count field... simpler: corrupt via the
	// header's side field and rely on validation or checksum.
	ft := genTable(t, 100, 73)
	orig, _ := BuildFromTable(ft, 0, 0, Config{})
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// The side field sits after magic(4+4) + version(2) + level(4) +
	// measure(4) = offset 18.
	data[18] = 0xFF
	data[19] = 0xFF
	if _, err := LoadCube(bytes.NewReader(data)); err == nil {
		t.Fatal("tampered geometry accepted")
	}
}
