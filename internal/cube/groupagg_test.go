package cube

import (
	"math"
	"testing"

	"hybridolap/internal/table"
)

func TestAggregateGroupsMatchesBruteForce(t *testing.T) {
	ft := genTable(t, 2500, 51)
	c, err := BuildFromTable(ft, 1, 0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Group level-1 cube cells by level-0 coordinates of dimension 0
	// (month -> year, ratio 12) over a sub-box.
	box := Box{{0, 35}, {5, 40}}
	m, err := c.AggregateGroups(box, []GroupSpec{{Dim: 0, Ratio: 12}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Brute force from fact rows.
	want := map[uint32]Agg{}
	meas := ft.MeasureColumn(0)
	for r := 0; r < ft.Rows(); r++ {
		mth := ft.CoordAt(r, 0, 1)
		city := ft.CoordAt(r, 1, 1)
		if mth > 35 || city < 5 || city > 40 {
			continue
		}
		var cell Cell
		cell.add(meas[r])
		a := want[mth/12]
		a.fold(cell)
		want[mth/12] = a
	}
	if len(m) != len(want) {
		t.Fatalf("groups = %d, want %d", len(m), len(want))
	}
	for k, a := range m {
		w := want[uint32(k)]
		if !aggEqual(a, w) {
			t.Fatalf("group %d: %+v vs %+v", k, a, w)
		}
	}
}

func TestAggregateGroupsParallelEqualsSequential(t *testing.T) {
	ft := genTable(t, 3000, 52)
	c, _ := BuildFromTable(ft, 1, 0, Config{})
	box := Box{{0, 35}, {0, 49}}
	specs := []GroupSpec{{Dim: 0, Ratio: 12}, {Dim: 1, Ratio: 10}}
	seq, err := c.AggregateGroups(box, specs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 5, 9} {
		par, err := c.AggregateGroups(box, specs, w)
		if err != nil {
			t.Fatal(err)
		}
		if len(par) != len(seq) {
			t.Fatalf("workers=%d: %d groups vs %d", w, len(par), len(seq))
		}
		for k, a := range seq {
			if !aggEqual(a, par[k]) {
				t.Fatalf("workers=%d group %d: %+v vs %+v", w, k, par[k], a)
			}
		}
	}
}

func TestAggregateGroupsOnCompressedCube(t *testing.T) {
	ft := genTable(t, 80, 53) // sparse level-1 cube -> compressed chunks
	c, _ := BuildFromTable(ft, 1, 0, Config{})
	m, err := c.AggregateGroups(Box{{0, 35}, {0, 49}}, []GroupSpec{{Dim: 0, Ratio: 12}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var rows int64
	for _, a := range m {
		rows += a.Count
	}
	if rows != 80 {
		t.Fatalf("rows = %d, want 80", rows)
	}
}

func TestAggregateGroupsValidation(t *testing.T) {
	ft := genTable(t, 50, 54)
	c, _ := BuildFromTable(ft, 0, 0, Config{})
	box := Box{{0, 2}, {0, 4}}
	if _, err := c.AggregateGroups(box, nil, 1); err == nil {
		t.Fatal("empty specs accepted")
	}
	if _, err := c.AggregateGroups(box, []GroupSpec{{Dim: 9, Ratio: 1}}, 1); err == nil {
		t.Fatal("bad dim accepted")
	}
	if _, err := c.AggregateGroups(box, []GroupSpec{{Dim: 0, Ratio: 0}}, 1); err == nil {
		t.Fatal("zero ratio accepted")
	}
	if _, err := c.AggregateGroups(Box{{0, 99}, {0, 0}}, []GroupSpec{{Dim: 0, Ratio: 1}}, 1); err == nil {
		t.Fatal("bad box accepted")
	}
}

func TestSetAggregateGroups(t *testing.T) {
	ft := genTable(t, 2000, 55)
	set, err := BuildSet(ft, []int{0, 1}, 0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Level-0 conditions, grouped at level 1 of dim 1: needs the level-1
	// cube even though the conditions are coarse.
	box := Box{{0, 2}, {0, 4}} // level-0 coords
	m, err := set.AggregateGroups(box, 0, []GroupLevel{{Dim: 1, Level: 1}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Reconcile each group with a scalar aggregate.
	for k, a := range m {
		city := uint32(k)
		scalar, _, err := set.Aggregate(Box{{0, 35}, {city, city}}, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		if a.Count != scalar.Count || math.Abs(a.Sum-scalar.Sum) > 1e-9 {
			t.Fatalf("group %d: %+v vs %+v", city, a, scalar)
		}
	}
	// Grouping finer than any stored level fails.
	set0, _ := BuildSet(ft, []int{0}, 0, Config{})
	if _, err := set0.AggregateGroups(box, 0, []GroupLevel{{Dim: 1, Level: 1}}, 1); err == nil {
		t.Fatal("too-fine grouping accepted")
	}
	// Virtual level cannot answer grouped queries.
	setV, _ := BuildSet(ft, []int{0}, 0, Config{})
	if err := setV.AddVirtual(1); err != nil {
		t.Fatal(err)
	}
	if _, err := setV.AggregateGroups(box, 0, []GroupLevel{{Dim: 1, Level: 1}}, 1); err == nil {
		t.Fatal("virtual level accepted for grouped aggregate")
	}
	_ = table.MaxGroupCols
}
