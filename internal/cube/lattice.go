package cube

import (
	"fmt"
	"math/bits"
	"sync"

	"hybridolap/internal/table"
)

// Lattice is the fully materialised group-by lattice at one resolution
// level: every subset of dimensions, computed top-down with the
// smallest-parent strategy the paper's related work describes (Liang &
// Orlowska's "parallelization and expansion of the smallest parent
// method", Sec. II-B; Gray et al.'s CUBE operator [5]): the base group-by
// (all dimensions) is aggregated from the fact table once, and every
// coarser group-by aggregates from its smallest already-computed parent
// rather than rescanning the facts.
type Lattice struct {
	dims     int
	level    int
	groupbys map[uint8]map[uint64]Agg
	// scans counts cells read during construction, for comparing parent
	// choices (telemetry, tests).
	cellsAggregated int64
}

// BuildLattice materialises all 2^N group-bys. Nodes within one lattice
// tier (equal dimension count) are independent and compute in parallel
// when cfg.Workers > 1.
func BuildLattice(ft *table.FactTable, level, measure int, cfg Config) (*Lattice, error) {
	s := ft.Schema()
	nd := len(s.Dimensions)
	if nd > MaxIcebergDims {
		return nil, fmt.Errorf("cube: lattice supports at most %d dimensions, schema has %d",
			MaxIcebergDims, nd)
	}
	if measure < 0 || measure >= len(s.Measures) {
		return nil, fmt.Errorf("cube: measure %d out of range", measure)
	}
	lvl := make([]int, nd)
	for d, dim := range s.Dimensions {
		lvl[d] = level
		if lvl[d] > dim.Finest() {
			lvl[d] = dim.Finest()
		}
		if dim.Levels[lvl[d]].Cardinality > 0x10000 {
			return nil, fmt.Errorf("cube: lattice cardinality %d exceeds 65536 in %q",
				dim.Levels[lvl[d]].Cardinality, dim.Name)
		}
	}

	l := &Lattice{dims: nd, level: level, groupbys: make(map[uint8]map[uint64]Agg, 1<<nd)}

	// Base group-by: one pass over the fact table.
	full := uint8(1<<nd - 1)
	base := make(map[uint64]Agg)
	meas := ft.MeasureColumn(measure)
	for r := 0; r < ft.Rows(); r++ {
		var key uint64
		for d := 0; d < nd; d++ {
			key = key<<16 | uint64(ft.CoordAt(r, d, lvl[d])&0xFFFF)
		}
		var c Cell
		c.add(meas[r])
		a := base[key]
		a.fold(c)
		base[key] = a
	}
	l.groupbys[full] = base
	l.cellsAggregated += int64(ft.Rows())

	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}

	// Tiers: popcount nd-1 down to 0. Each node picks its smallest parent
	// among computed supersets with exactly one extra dimension.
	for pc := nd - 1; pc >= 0; pc-- {
		var masks []uint8
		for m := uint8(0); m < 1<<nd; m++ {
			if bits.OnesCount8(m) == pc {
				masks = append(masks, m)
			}
		}
		results := make([]map[uint64]Agg, len(masks))
		counts := make([]int64, len(masks))
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for i, m := range masks {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int, m uint8) {
				defer wg.Done()
				defer func() { <-sem }()
				parent, drop := l.smallestParent(m, nd)
				results[i], counts[i] = rollupGroupBy(l.groupbys[parent], parent, drop, nd)
			}(i, m)
		}
		wg.Wait()
		for i, m := range masks {
			l.groupbys[m] = results[i]
			l.cellsAggregated += counts[i]
		}
	}
	return l, nil
}

// smallestParent returns the computed superset of mask with one extra
// dimension having the fewest cells, plus the dimension to drop.
func (l *Lattice) smallestParent(mask uint8, nd int) (parent uint8, drop int) {
	best := -1
	for d := 0; d < nd; d++ {
		if mask&(1<<d) != 0 {
			continue
		}
		p := mask | 1<<d
		if gb, ok := l.groupbys[p]; ok {
			if best < 0 || len(gb) < best {
				best = len(gb)
				parent = p
				drop = d
			}
		}
	}
	return parent, drop
}

// rollupGroupBy aggregates a parent group-by down by dropping dimension
// `drop` from its key. Returns the child map and the number of parent
// cells read.
func rollupGroupBy(parent map[uint64]Agg, parentMask uint8, drop, nd int) (map[uint64]Agg, int64) {
	child := make(map[uint64]Agg)
	// Key layout: coordinates of set dims, dimension order, 16 bits each,
	// lowest dim in highest bits. Compute the bit position of `drop` within
	// the parent key.
	// Count set dims after (higher than) drop in the parent mask: they sit
	// in lower bits.
	lower := 0
	for d := drop + 1; d < nd; d++ {
		if parentMask&(1<<d) != 0 {
			lower++
		}
	}
	shift := uint(16 * lower)
	for k, a := range parent {
		lo := k & ((1 << shift) - 1)
		hi := k >> (shift + 16)
		ck := hi<<shift | lo
		acc := child[ck]
		acc = acc.Merge(a)
		child[ck] = acc
	}
	return child, int64(len(parent))
}

// Get looks up one lattice cell: coords[d] is the coordinate of dimension
// d, or -1 when d is aggregated away.
func (l *Lattice) Get(coords []int32) (Agg, bool) {
	if len(coords) != l.dims {
		return Agg{}, false
	}
	var mask uint8
	var key uint64
	for d, c := range coords {
		if c < 0 {
			continue
		}
		mask |= 1 << d
		key = key<<16 | uint64(uint32(c)&0xFFFF)
	}
	gb, ok := l.groupbys[mask]
	if !ok {
		return Agg{}, false
	}
	a, ok := gb[key]
	return a, ok
}

// NumCells returns the total cells across all group-bys.
func (l *Lattice) NumCells() int {
	n := 0
	for _, gb := range l.groupbys {
		n += len(gb)
	}
	return n
}

// CellsAggregated reports construction work: cells (or fact rows for the
// base) read while building. Smallest-parent keeps this far below
// 2^N × rows, the naive cost the paper's [10] first algorithm pays.
func (l *Lattice) CellsAggregated() int64 { return l.cellsAggregated }

// Apex returns the grand total.
func (l *Lattice) Apex() Agg {
	gb := l.groupbys[0]
	return gb[0]
}
