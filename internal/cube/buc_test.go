package cube

import (
	"testing"
)

// bruteIceberg computes the full lattice by enumeration.
func bruteIceberg(t *testing.T, ft interface {
	Rows() int
	CoordAt(r, d, l int) uint32
	MeasureColumn(m int) []float64
}, level int, dims int, lvl []int, minSup int) map[[5]int32]Agg {
	t.Helper()
	out := map[[5]int32]Agg{}
	meas := ft.MeasureColumn(0)
	// Enumerate all masks.
	for mask := 0; mask < 1<<dims; mask++ {
		groups := map[[5]int32]Agg{}
		for r := 0; r < ft.Rows(); r++ {
			var key [5]int32
			key[4] = int32(mask)
			for d := 0; d < dims; d++ {
				if mask&(1<<d) != 0 {
					key[d] = int32(ft.CoordAt(r, d, lvl[d]))
				} else {
					key[d] = -1
				}
			}
			var c Cell
			c.add(meas[r])
			a := groups[key]
			a.fold(c)
			groups[key] = a
		}
		for k, a := range groups {
			if a.Count >= int64(minSup) {
				out[k] = a
			}
		}
	}
	return out
}

func TestBUCMatchesBruteForce(t *testing.T) {
	ft := genTable(t, 300, 91)
	minSup := 3
	ic, err := BuildIceberg(ft, 0, 0, minSup)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteIceberg(t, ft, 0, 2, []int{0, 0}, minSup)
	if ic.NumCells() != len(want) {
		t.Fatalf("cells = %d, want %d", ic.NumCells(), len(want))
	}
	for k, w := range want {
		coords := []int32{k[0], k[1]}
		got, ok := ic.Get(coords)
		if !ok {
			t.Fatalf("cell %v missing", coords)
		}
		if !aggEqual(got, w) {
			t.Fatalf("cell %v: %+v vs %+v", coords, got, w)
		}
	}
}

func TestBUCApexAndPruning(t *testing.T) {
	ft := genTable(t, 500, 92)
	minSup := 10
	ic, err := BuildIceberg(ft, 1, 0, minSup)
	if err != nil {
		t.Fatal(err)
	}
	// Apex covers every row.
	if got := ic.Apex(); got.Count != 500 {
		t.Fatalf("apex count = %d", got.Count)
	}
	if ic.MinSup() != minSup {
		t.Fatalf("MinSup = %d", ic.MinSup())
	}
	// No materialised cell has support below minSup (except the apex,
	// which by definition has all rows).
	small, err := BuildIceberg(ft, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Pruning strictly reduces (or keeps) the lattice size.
	if ic.NumCells() >= small.NumCells() {
		t.Fatalf("minSup=%d has %d cells, minSup=1 has %d", minSup, ic.NumCells(), small.NumCells())
	}
}

func TestBUCMonotonePruning(t *testing.T) {
	ft := genTable(t, 400, 93)
	prev := 1 << 30
	for _, ms := range []int{1, 2, 5, 20, 100} {
		ic, err := BuildIceberg(ft, 1, 0, ms)
		if err != nil {
			t.Fatal(err)
		}
		if ic.NumCells() > prev {
			t.Fatalf("minSup=%d grew the lattice: %d > %d", ms, ic.NumCells(), prev)
		}
		prev = ic.NumCells()
	}
}

func TestBUCAgreesWithDenseCube(t *testing.T) {
	// Fully-grouped cells of the iceberg (mask = all dims) with minSup 1
	// must equal the dense cube's cells.
	ft := genTable(t, 600, 94)
	ic, err := BuildIceberg(ft, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := BuildFromTable(ft, 1, 0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	cards := dense.Cards()
	checked := 0
	for x := 0; x < cards[0]; x++ {
		for y := 0; y < cards[1]; y++ {
			cell := dense.Get([]uint32{uint32(x), uint32(y)})
			agg, ok := ic.Get([]int32{int32(x), int32(y)})
			if cell.Count == 0 {
				if ok {
					t.Fatalf("iceberg has phantom cell (%d,%d)", x, y)
				}
				continue
			}
			if !ok {
				t.Fatalf("iceberg missing cell (%d,%d)", x, y)
			}
			w := Agg{Sum: cell.Sum, Count: cell.Count, Min: cell.Min, Max: cell.Max}
			if !aggEqual(agg, w) {
				t.Fatalf("cell (%d,%d): %+v vs %+v", x, y, agg, w)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no cells compared")
	}
}

func TestBUCValidation(t *testing.T) {
	ft := genTable(t, 10, 95)
	if _, err := BuildIceberg(ft, 0, 9, 1); err == nil {
		t.Fatal("bad measure accepted")
	}
	if _, err := BuildIceberg(ft, 0, 0, 0); err == nil {
		t.Fatal("zero minSup accepted")
	}
	ic, _ := BuildIceberg(ft, 0, 0, 1)
	if _, ok := ic.Get([]int32{0}); ok {
		t.Fatal("wrong-arity Get accepted")
	}
}

func BenchmarkBUCBuild(b *testing.B) {
	ft := genTable(b, 20_000, 96)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildIceberg(ft, 1, 0, 5); err != nil {
			b.Fatal(err)
		}
	}
}
