package cube

import (
	"fmt"

	"hybridolap/internal/table"
)

// Rollup derives a coarser cube from a finer one without rescanning the
// fact table — the "smallest parent" computation of Zhao, Deshpande &
// Naughton [20] and Gray et al. [5] that the paper's Sec. II-B surveys:
// "compute any group-by of a cube from its parent". Each fine cell's
// aggregate folds into the coarse cell it rolls up to; sums, counts, mins
// and maxes all compose exactly, so a rolled-up cube is indistinguishable
// from one built directly from the fact table.
//
// toLevel must be coarser than (or equal to) the source cube's level.
func Rollup(src *Cube, s *table.Schema, toLevel int, cfg Config) (*Cube, error) {
	if toLevel < 0 {
		return nil, fmt.Errorf("cube: negative rollup level %d", toLevel)
	}
	if toLevel > src.Level() {
		return nil, fmt.Errorf("cube: cannot roll level-%d cube up to finer level %d", src.Level(), toLevel)
	}
	wantSrc := levelCards(s, src.Level())
	for d, card := range wantSrc {
		if src.Cards()[d] != card {
			return nil, fmt.Errorf("cube: source cube does not match schema at level %d (dim %d: %d vs %d)",
				src.Level(), d, src.Cards()[d], card)
		}
	}
	dstCards := levelCards(s, toLevel)
	dst, err := newCube(toLevel, dstCards, cfg.ChunkSide)
	if err != nil {
		return nil, err
	}
	dst.measure = src.measure

	// ratio[d] fine coordinates collapse into one coarse coordinate.
	ratio := make([]uint32, len(dstCards))
	for d := range dstCards {
		ratio[d] = uint32(wantSrc[d] / dstCards[d])
	}

	n := len(src.Cards())
	fine := make([]uint32, n)
	coarse := make([]uint32, n)
	fold := func(chunkIdx int, off uint32, cell Cell) {
		// Decode the global fine coordinates of (chunkIdx, off).
		ci := chunkIdx
		o := int(off)
		for d := n - 1; d >= 0; d-- {
			local := uint32(o % src.side)
			o /= src.side
			gc := uint32(ci % src.grid[d])
			ci /= src.grid[d]
			fine[d] = gc*uint32(src.side) + local
		}
		for d := 0; d < n; d++ {
			coarse[d] = fine[d] / ratio[d]
		}
		dst.addCell(coarse, cell)
	}
	for idx, ch := range src.chunks {
		if ch == nil {
			continue
		}
		if ch.isDense() {
			for off, cell := range ch.dense {
				if cell.Count != 0 {
					fold(idx, uint32(off), cell)
				}
			}
		} else {
			for k, off := range ch.offsets {
				fold(idx, off, ch.cells[k])
			}
		}
	}
	dst.rows = src.rows
	dst.compressAll()
	return dst, nil
}

// addCell folds a whole aggregate cell (not a single value) into the cube.
func (c *Cube) addCell(coords []uint32, cell Cell) {
	ci, off := c.chunkOf(coords)
	ch := c.chunks[ci]
	if ch == nil || !ch.isDense() {
		ch = ch.decompress(c.vol)
		c.chunks[ci] = ch
	}
	dst := &ch.dense[off]
	if dst.Count == 0 && cell.Count != 0 {
		ch.filled++
		c.filled++
	}
	dst.merge(cell)
}

// BuildSetByRollup pre-calculates a cube set the smallest-parent way: the
// finest requested level is aggregated from the fact table once, and each
// coarser level rolls up from the next finer one. For k levels this scans
// the fact table once instead of k times — the optimisation the paper's
// [20] is cited for.
func BuildSetByRollup(ft *table.FactTable, levels []int, measure int, cfg Config) (*Set, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("cube: no levels requested")
	}
	sorted := append([]int(nil), levels...)
	for i := 1; i < len(sorted); i++ { // insertion sort; level lists are tiny
		for j := i; j > 0 && sorted[j-1] > sorted[j]; j-- {
			sorted[j-1], sorted[j] = sorted[j], sorted[j-1]
		}
	}
	s := NewSet(ft.Schema())
	finest := sorted[len(sorted)-1]
	parent, err := BuildFromTable(ft, finest, measure, cfg)
	if err != nil {
		return nil, err
	}
	if err := s.Add(parent); err != nil {
		return nil, err
	}
	for i := len(sorted) - 2; i >= 0; i-- {
		if sorted[i] == sorted[i+1] {
			continue
		}
		c, err := Rollup(parent, ft.Schema(), sorted[i], cfg)
		if err != nil {
			return nil, err
		}
		if err := s.Add(c); err != nil {
			return nil, err
		}
		parent = c
	}
	return s, nil
}
