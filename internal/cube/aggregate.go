package cube

import (
	"runtime"
	"sync"
)

// Aggregate folds every cell of the box (in this cube's level coordinates)
// into a single Agg. workers <= 1 runs sequentially; otherwise the chunks
// intersecting the box are statically partitioned across workers — the
// parallel OpenMP loop of the paper, expressed as a goroutine fork/join.
//
// The returned Agg answers sum, count, avg, min and max simultaneously.
func (c *Cube) Aggregate(box Box, workers int) (Agg, error) {
	if err := box.validate(c.cards); err != nil {
		return Agg{}, err
	}
	items := c.intersectingChunks(box)
	if len(items) == 0 {
		return Agg{}, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(items) {
		workers = len(items)
	}
	if workers == 1 {
		var acc Agg
		for _, it := range items {
			acc = acc.Merge(c.aggregateChunk(it))
		}
		return acc, nil
	}

	partials := make([]Agg, workers)
	var wg sync.WaitGroup
	stripe := (len(items) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * stripe
		hi := lo + stripe
		if hi > len(items) {
			hi = len(items)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var acc Agg
			for i := lo; i < hi; i++ {
				acc = acc.Merge(c.aggregateChunk(items[i]))
			}
			partials[w] = acc
		}(w, lo, hi)
	}
	wg.Wait()
	var acc Agg
	for _, p := range partials {
		acc = acc.Merge(p)
	}
	return acc, nil
}

// workItem pairs a chunk index with the box↔chunk overlap in chunk-local
// coordinates, plus whether the chunk lies entirely inside the box.
type workItem struct {
	chunkIdx int
	local    Box
	whole    bool
}

// intersectingChunks enumerates chunks overlapping the box.
func (c *Cube) intersectingChunks(box Box) []workItem {
	n := len(c.cards)
	gFrom := make([]int, n)
	gTo := make([]int, n)
	for d, r := range box {
		gFrom[d] = int(r.From) / c.side
		gTo[d] = int(r.To) / c.side
	}
	var items []workItem
	gc := make([]int, n) // current chunk grid coords
	copy(gc, gFrom)
	for {
		idx := 0
		whole := true
		local := make(Box, n)
		for d := 0; d < n; d++ {
			idx = idx*c.grid[d] + gc[d]
			chunkLo := gc[d] * c.side
			lo, hi := 0, c.side-1
			if int(box[d].From) > chunkLo {
				lo = int(box[d].From) - chunkLo
			}
			if int(box[d].To) < chunkLo+c.side-1 {
				hi = int(box[d].To) - chunkLo
			}
			// Chunks at the high edge of the grid may extend past the
			// cardinality; cells there are never filled, so scanning them is
			// harmless, but clamping keeps the "whole" test honest.
			if edge := c.cards[d] - chunkLo - 1; hi > edge {
				hi = edge
			}
			if lo != 0 || hi != c.side-1 {
				whole = false
			}
			local[d] = Range{From: uint32(lo), To: uint32(hi)}
		}
		if c.chunks[idx] != nil {
			items = append(items, workItem{chunkIdx: idx, local: local, whole: whole})
		}
		// Odometer increment over [gFrom, gTo].
		d := n - 1
		for d >= 0 {
			gc[d]++
			if gc[d] <= gTo[d] {
				break
			}
			gc[d] = gFrom[d]
			d--
		}
		if d < 0 {
			break
		}
	}
	return items
}

// aggregateChunk folds the overlap region of one chunk.
func (c *Cube) aggregateChunk(it workItem) Agg {
	ch := c.chunks[it.chunkIdx]
	var acc Agg
	if ch == nil {
		return acc
	}
	n := len(c.cards)
	if !ch.isDense() {
		// Compressed chunk. Entirely-contained chunks fold every entry; a
		// partial overlap decodes each offset and tests membership.
		if it.whole {
			for _, cell := range ch.cells {
				acc.fold(cell)
			}
			return acc
		}
		for k, off := range ch.offsets {
			o := int(off)
			inside := true
			// Decode local coords last-dimension-first.
			for d := n - 1; d >= 0; d-- {
				x := uint32(o % c.side)
				o /= c.side
				if x < it.local[d].From || x > it.local[d].To {
					inside = false
					break
				}
			}
			if inside {
				acc.fold(ch.cells[k])
			}
		}
		return acc
	}

	// Dense chunk: stream contiguous runs along the last dimension.
	last := n - 1
	runFrom := int(it.local[last].From)
	runLen := int(it.local[last].To) - runFrom + 1
	// Odometer over the outer dimensions.
	outer := make([]int, last)
	for d := 0; d < last; d++ {
		outer[d] = int(it.local[d].From)
	}
	for {
		base := 0
		for d := 0; d < last; d++ {
			base = base*c.side + outer[d]
		}
		base = base*c.side + runFrom
		run := ch.dense[base : base+runLen]
		for i := range run {
			if run[i].Count != 0 {
				acc.fold(run[i])
			}
		}
		if last == 0 {
			break
		}
		d := last - 1
		for d >= 0 {
			outer[d]++
			if outer[d] <= int(it.local[d].To) {
				break
			}
			outer[d] = int(it.local[d].From)
			d--
		}
		if d < 0 {
			break
		}
	}
	return acc
}
