package cube

import (
	"runtime"
	"sync"
)

// Aggregate folds every cell of the box (in this cube's level coordinates)
// into a single Agg. workers <= 1 runs sequentially; otherwise the chunks
// intersecting the box are statically partitioned across workers — the
// parallel OpenMP loop of the paper, expressed as a goroutine fork/join.
//
// The returned Agg answers sum, count, avg, min and max simultaneously.
func (c *Cube) Aggregate(box Box, workers int) (Agg, error) {
	if err := box.validate(c.cards); err != nil {
		return Agg{}, err
	}
	sc := aggScratchPool.Get().(*aggScratch)
	defer aggScratchPool.Put(sc)
	items := c.intersectingChunks(box, sc)
	if len(items) == 0 {
		return Agg{}, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(items) {
		workers = len(items)
	}
	if workers == 1 {
		var acc Agg
		for i := range items {
			acc = acc.Merge(c.aggregateChunk(items[i]))
		}
		return acc, nil
	}

	partials := make([]Agg, workers)
	var wg sync.WaitGroup
	stripe := (len(items) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * stripe
		hi := lo + stripe
		if hi > len(items) {
			hi = len(items)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var acc Agg
			for i := lo; i < hi; i++ {
				acc = acc.Merge(c.aggregateChunk(items[i]))
			}
			partials[w] = acc
		}(w, lo, hi)
	}
	wg.Wait()
	var acc Agg
	for _, p := range partials {
		acc = acc.Merge(p)
	}
	return acc, nil
}

// workItem pairs a chunk index with the box↔chunk overlap in chunk-local
// coordinates, plus whether the chunk lies entirely inside the box.
type workItem struct {
	chunkIdx int
	local    Box
	whole    bool
}

// aggScratch holds the per-aggregation working set: the work-item list,
// one slab backing every item's local Box, and the odometer state. Every
// Aggregate/AggregateGroups call used to allocate a fresh Box per
// intersecting chunk; a paper-scale workload aggregates thousands of
// chunks per query at millions of queries, so the steady-state enumeration
// now draws everything from this pool and allocates nothing.
type aggScratch struct {
	items      []workItem
	locals     []Range // slab: items[i].local = locals[i*n : (i+1)*n]
	gFrom, gTo []int
	gc         []int
}

var aggScratchPool = sync.Pool{New: func() any { return new(aggScratch) }}

// grow returns s with length n, reusing capacity.
func grow(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// intersectingChunks enumerates chunks overlapping the box into the
// scratch buffers and returns the item list (valid until the scratch is
// pooled again; callers must not retain it).
func (c *Cube) intersectingChunks(box Box, sc *aggScratch) []workItem {
	n := len(c.cards)
	sc.gFrom = grow(sc.gFrom, n)
	sc.gTo = grow(sc.gTo, n)
	sc.gc = grow(sc.gc, n)
	gFrom, gTo, gc := sc.gFrom, sc.gTo, sc.gc
	// The grid sub-box is known up front, so the locals slab can be sized
	// exactly: no append ever reallocates it mid-enumeration (items alias
	// into it, so a reallocation would orphan earlier boxes).
	nChunks := 1
	for d, r := range box {
		gFrom[d] = int(r.From) / c.side
		gTo[d] = int(r.To) / c.side
		nChunks *= gTo[d] - gFrom[d] + 1
	}
	if cap(sc.locals) < nChunks*n {
		sc.locals = make([]Range, 0, nChunks*n)
	}
	sc.locals = sc.locals[:0]
	sc.items = sc.items[:0]
	copy(gc, gFrom)
	for {
		idx := 0
		whole := true
		off := len(sc.locals)
		sc.locals = sc.locals[:off+n]
		local := Box(sc.locals[off : off+n : off+n])
		for d := 0; d < n; d++ {
			idx = idx*c.grid[d] + gc[d]
			chunkLo := gc[d] * c.side
			lo, hi := 0, c.side-1
			if int(box[d].From) > chunkLo {
				lo = int(box[d].From) - chunkLo
			}
			if int(box[d].To) < chunkLo+c.side-1 {
				hi = int(box[d].To) - chunkLo
			}
			// Chunks at the high edge of the grid may extend past the
			// cardinality; cells there are never filled, so scanning them is
			// harmless, but clamping keeps the "whole" test honest.
			if edge := c.cards[d] - chunkLo - 1; hi > edge {
				hi = edge
			}
			if lo != 0 || hi != c.side-1 {
				whole = false
			}
			local[d] = Range{From: uint32(lo), To: uint32(hi)}
		}
		if c.chunks[idx] != nil {
			sc.items = append(sc.items, workItem{chunkIdx: idx, local: local, whole: whole})
		} else {
			sc.locals = sc.locals[:off] // chunk empty: hand the slab space back
		}
		// Odometer increment over [gFrom, gTo].
		d := n - 1
		for d >= 0 {
			gc[d]++
			if gc[d] <= gTo[d] {
				break
			}
			gc[d] = gFrom[d]
			d--
		}
		if d < 0 {
			break
		}
	}
	return sc.items
}

// aggregateChunk folds the overlap region of one chunk.
func (c *Cube) aggregateChunk(it workItem) Agg {
	ch := c.chunks[it.chunkIdx]
	var acc Agg
	if ch == nil {
		return acc
	}
	n := len(c.cards)
	if !ch.isDense() {
		// Compressed chunk. Entirely-contained chunks fold every entry —
		// the cells array stores filled cells only, so the full-run kernel
		// applies with no occupancy test. A partial overlap decodes each
		// offset and tests membership.
		if it.whole {
			acc.foldRunFull(ch.cells)
			return acc
		}
		for k, off := range ch.offsets {
			o := int(off)
			inside := true
			// Decode local coords last-dimension-first.
			for d := n - 1; d >= 0; d-- {
				x := uint32(o % c.side)
				o /= c.side
				if x < it.local[d].From || x > it.local[d].To {
					inside = false
					break
				}
			}
			if inside {
				acc.fold(ch.cells[k])
			}
		}
		return acc
	}

	// Dense chunk: stream contiguous runs along the last dimension. When
	// occupancy metadata says every cell is filled, the per-cell
	// Count != 0 test drops out of the run kernel entirely.
	full := ch.filled == len(ch.dense)
	if it.whole {
		if full {
			acc.foldRunFull(ch.dense)
		} else {
			acc.foldRun(ch.dense)
		}
		return acc
	}
	last := n - 1
	runFrom := int(it.local[last].From)
	runLen := int(it.local[last].To) - runFrom + 1
	// Odometer over the outer dimensions. The fixed backing array keeps
	// the odometer on the stack for every realistic dimensionality.
	var outerBuf [8]int
	outer := outerBuf[:0]
	if last > len(outerBuf) {
		outer = make([]int, last)
	} else {
		outer = outerBuf[:last]
	}
	for d := 0; d < last; d++ {
		outer[d] = int(it.local[d].From)
	}
	for {
		base := 0
		for d := 0; d < last; d++ {
			base = base*c.side + outer[d]
		}
		base = base*c.side + runFrom
		run := ch.dense[base : base+runLen]
		if full {
			acc.foldRunFull(run)
		} else {
			acc.foldRun(run)
		}
		if last == 0 {
			break
		}
		d := last - 1
		for d >= 0 {
			outer[d]++
			if outer[d] <= int(it.local[d].To) {
				break
			}
			outer[d] = int(it.local[d].From)
			d--
		}
		if d < 0 {
			break
		}
	}
	return acc
}
