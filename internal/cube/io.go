package cube

import (
	"fmt"
	"io"

	"hybridolap/internal/binio"
)

// Persistence format: magic, version, geometry, then one record per chunk
// (empty, dense or chunk-offset compressed), with a trailing CRC-32.
const (
	cubeMagic   = "HOLC"
	cubeVersion = 1

	chunkEmpty      = 0
	chunkDense      = 1
	chunkCompressed = 2
)

// Save writes the cube to w.
func (c *Cube) Save(w io.Writer) error {
	bw := binio.NewWriter(w)
	bw.String(cubeMagic)
	bw.U16(cubeVersion)
	bw.U32(uint32(c.level))
	bw.U32(uint32(c.measure))
	bw.U32(uint32(c.side))
	bw.U32(uint32(len(c.cards)))
	for _, card := range c.cards {
		bw.U64(uint64(card))
	}
	bw.I64(c.filled)
	bw.I64(c.rows)
	bw.U64(uint64(len(c.chunks)))
	writeCell := func(cell Cell) {
		bw.F64(cell.Sum)
		bw.I64(cell.Count)
		bw.F64(cell.Min)
		bw.F64(cell.Max)
	}
	for _, ch := range c.chunks {
		switch {
		case ch == nil:
			bw.U8(chunkEmpty)
		case ch.isDense():
			bw.U8(chunkDense)
			bw.U32(uint32(ch.filled))
			for _, cell := range ch.dense {
				writeCell(cell)
			}
		default:
			bw.U8(chunkCompressed)
			bw.U32(uint32(ch.filled))
			bw.U32s(ch.offsets)
			for _, cell := range ch.cells {
				writeCell(cell)
			}
		}
	}
	return bw.Sum()
}

// LoadCube reads a cube written by Save.
func LoadCube(r io.Reader) (*Cube, error) {
	br := binio.NewReader(r)
	if magic := br.String(); magic != cubeMagic {
		if br.Err() != nil {
			return nil, br.Err()
		}
		return nil, fmt.Errorf("cube: bad magic %q", magic)
	}
	if v := br.U16(); v != cubeVersion {
		if br.Err() != nil {
			return nil, br.Err()
		}
		return nil, fmt.Errorf("cube: unsupported version %d", v)
	}
	level := int(br.U32())
	measure := int(br.U32())
	side := int(br.U32())
	nd := int(br.U32())
	if br.Err() != nil {
		return nil, br.Err()
	}
	if nd == 0 || nd > 64 || side <= 0 || side > 1<<16 {
		return nil, fmt.Errorf("cube: implausible geometry (dims=%d side=%d)", nd, side)
	}
	cards := make([]int, nd)
	for i := range cards {
		cards[i] = int(br.U64())
	}
	if br.Err() != nil {
		return nil, br.Err()
	}
	c, err := newCube(level, cards, side)
	if err != nil {
		return nil, err
	}
	c.measure = measure
	c.filled = br.I64()
	c.rows = br.I64()
	nChunks := int(br.U64())
	if br.Err() != nil {
		return nil, br.Err()
	}
	if nChunks != len(c.chunks) {
		return nil, fmt.Errorf("cube: file has %d chunks, geometry implies %d", nChunks, len(c.chunks))
	}
	readCell := func() Cell {
		return Cell{Sum: br.F64(), Count: br.I64(), Min: br.F64(), Max: br.F64()}
	}
	var checkFilled int64
	for i := 0; i < nChunks; i++ {
		switch kind := br.U8(); kind {
		case chunkEmpty:
		case chunkDense:
			filled := int(br.U32())
			ch := &chunk{dense: make([]Cell, c.vol), filled: filled}
			for j := range ch.dense {
				ch.dense[j] = readCell()
			}
			if br.Err() != nil {
				return nil, br.Err()
			}
			c.chunks[i] = ch
			checkFilled += int64(filled)
		case chunkCompressed:
			filled := int(br.U32())
			offsets := br.U32s(c.vol)
			if br.Err() != nil {
				return nil, br.Err()
			}
			cells := make([]Cell, len(offsets))
			for j := range cells {
				cells[j] = readCell()
			}
			if br.Err() != nil {
				return nil, br.Err()
			}
			for j := 1; j < len(offsets); j++ {
				if offsets[j] <= offsets[j-1] {
					return nil, fmt.Errorf("cube: chunk %d offsets not strictly increasing", i)
				}
			}
			if len(offsets) > 0 && int(offsets[len(offsets)-1]) >= c.vol {
				return nil, fmt.Errorf("cube: chunk %d offset out of range", i)
			}
			c.chunks[i] = &chunk{offsets: offsets, cells: cells, filled: filled}
			checkFilled += int64(filled)
		default:
			if br.Err() != nil {
				return nil, br.Err()
			}
			return nil, fmt.Errorf("cube: unknown chunk kind %d", kind)
		}
	}
	if err := br.CheckSum(); err != nil {
		return nil, err
	}
	if checkFilled != c.filled {
		return nil, fmt.Errorf("cube: chunk fill sum %d disagrees with header %d", checkFilled, c.filled)
	}
	return c, nil
}
