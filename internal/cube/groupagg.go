package cube

import (
	"fmt"
	"sync"

	"hybridolap/internal/table"
)

// GroupSpec maps the cube's own coordinates in one dimension onto group
// coordinates: Ratio cube cells collapse into one group (Ratio = cube
// cardinality / group-level cardinality, exact by the schema invariant).
type GroupSpec struct {
	Dim   int
	Ratio uint32
}

// AggregateGroups folds every cell of the box into per-group aggregates,
// keyed by table.PackKey over the group coordinates in spec order. The
// same chunk partitioning as Aggregate drives the parallelism; each worker
// accumulates a private map and the maps merge at the barrier.
func (c *Cube) AggregateGroups(box Box, specs []GroupSpec, workers int) (map[table.GroupKey]Agg, error) {
	if err := box.validate(c.cards); err != nil {
		return nil, err
	}
	if len(specs) == 0 || len(specs) > table.MaxGroupCols {
		return nil, fmt.Errorf("cube: need 1..%d group specs, got %d", table.MaxGroupCols, len(specs))
	}
	for _, sp := range specs {
		if sp.Dim < 0 || sp.Dim >= len(c.cards) {
			return nil, fmt.Errorf("cube: group dimension %d out of range", sp.Dim)
		}
		if sp.Ratio == 0 {
			return nil, fmt.Errorf("cube: zero group ratio")
		}
		if groups := (uint32(c.cards[sp.Dim]) + sp.Ratio - 1) / sp.Ratio; groups > 0x10000 {
			return nil, fmt.Errorf("cube: %d groups in dimension %d exceeds 65536", groups, sp.Dim)
		}
	}
	sc := aggScratchPool.Get().(*aggScratch)
	defer aggScratchPool.Put(sc)
	items := c.intersectingChunks(box, sc)
	if len(items) == 0 {
		return map[table.GroupKey]Agg{}, nil
	}
	if workers <= 0 {
		workers = 1
	}
	if workers > len(items) {
		workers = len(items)
	}
	if workers == 1 {
		acc := make(map[table.GroupKey]Agg)
		for _, it := range items {
			c.groupChunk(it, specs, acc)
		}
		return acc, nil
	}
	partials := make([]map[table.GroupKey]Agg, workers)
	var wg sync.WaitGroup
	stripe := (len(items) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*stripe, (w+1)*stripe
		if hi > len(items) {
			hi = len(items)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			acc := make(map[table.GroupKey]Agg)
			for i := lo; i < hi; i++ {
				c.groupChunk(items[i], specs, acc)
			}
			partials[w] = acc
		}(w, lo, hi)
	}
	wg.Wait()
	acc := make(map[table.GroupKey]Agg)
	for _, p := range partials {
		for k, v := range p {
			acc[k] = acc[k].Merge(v)
		}
	}
	return acc, nil
}

// groupChunk folds one chunk's overlap into the group map.
func (c *Cube) groupChunk(it workItem, specs []GroupSpec, acc map[table.GroupKey]Agg) {
	ch := c.chunks[it.chunkIdx]
	if ch == nil {
		return
	}
	n := len(c.cards)
	// Chunk grid coordinates → base global coordinates.
	base := make([]uint32, n)
	ci := it.chunkIdx
	for d := n - 1; d >= 0; d-- {
		base[d] = uint32(ci%c.grid[d]) * uint32(c.side)
		ci /= c.grid[d]
	}
	keyOf := func(local []uint32) table.GroupKey {
		var k table.GroupKey
		for _, sp := range specs {
			g := (base[sp.Dim] + local[sp.Dim]) / sp.Ratio
			k = k<<16 | table.GroupKey(g&0xFFFF)
		}
		return k
	}
	fold := func(local []uint32, cell Cell) {
		k := keyOf(local)
		a := acc[k]
		a.fold(cell)
		acc[k] = a
	}
	local := make([]uint32, n)
	if !ch.isDense() {
		for i, off := range ch.offsets {
			o := int(off)
			inside := true
			for d := n - 1; d >= 0; d-- {
				x := uint32(o % c.side)
				o /= c.side
				local[d] = x
				if x < it.local[d].From || x > it.local[d].To {
					inside = false
				}
			}
			if inside {
				fold(local, ch.cells[i])
			}
		}
		return
	}
	// Dense: odometer over the local overlap.
	for d := 0; d < n; d++ {
		local[d] = it.local[d].From
	}
	for {
		off := 0
		for d := 0; d < n; d++ {
			off = off*c.side + int(local[d])
		}
		if cell := ch.dense[off]; cell.Count != 0 {
			fold(local, cell)
		}
		d := n - 1
		for d >= 0 {
			local[d]++
			if local[d] <= it.local[d].To {
				break
			}
			local[d] = it.local[d].From
			d--
		}
		if d < 0 {
			break
		}
	}
}

// GroupLevel names a grouping column at the query level: dimension Dim
// grouped at hierarchy level Level.
type GroupLevel struct {
	Dim, Level int
}

// AggregateGroups answers a grouped query from the set: box is at
// resolution r; the picked cube level must also be at least as fine as
// every group level. Keys are coordinates at each group's own level, in
// group order.
func (s *Set) AggregateGroups(box Box, r int, groups []GroupLevel, workers int) (map[table.GroupKey]Agg, error) {
	need := r
	for _, g := range groups {
		if g.Level > need {
			need = g.Level
		}
	}
	l, ok := s.PickLevel(need)
	if !ok {
		return nil, fmt.Errorf("cube: no stored cube at level >= %d", need)
	}
	c, ok := s.cubes[l]
	if !ok {
		return nil, fmt.Errorf("cube: level %d is virtual (estimation only)", l)
	}
	eb, err := s.ExpandBox(box, r, l)
	if err != nil {
		return nil, err
	}
	specs := make([]GroupSpec, len(groups))
	for i, g := range groups {
		if g.Dim < 0 || g.Dim >= len(s.schema.Dimensions) {
			return nil, fmt.Errorf("cube: group dimension %d out of range", g.Dim)
		}
		dim := s.schema.Dimensions[g.Dim]
		gl, cl := g.Level, l
		if gl > dim.Finest() {
			gl = dim.Finest()
		}
		if cl > dim.Finest() {
			cl = dim.Finest()
		}
		specs[i] = GroupSpec{
			Dim:   g.Dim,
			Ratio: uint32(dim.Levels[cl].Cardinality / dim.Levels[gl].Cardinality),
		}
	}
	return c.AggregateGroups(eb, specs, workers)
}
