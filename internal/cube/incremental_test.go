package cube

import (
	"math"
	"testing"

	"hybridolap/internal/table"
)

func incSchema() table.Schema {
	return table.Schema{
		Dimensions: []table.DimensionSpec{
			{Name: "a", Levels: []table.LevelSpec{
				{Name: "a0", Cardinality: 4}, {Name: "a1", Cardinality: 32}}},
			{Name: "b", Levels: []table.LevelSpec{
				{Name: "b0", Cardinality: 8}, {Name: "b1", Cardinality: 64}}},
		},
		Measures: []table.MeasureSpec{{Name: "m"}},
	}
}

func incTable(t *testing.T, rows int, seed int64) *table.FactTable {
	t.Helper()
	ft, err := table.Generate(table.GenSpec{Schema: incSchema(), Rows: rows, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return ft
}

// concatTables rebuilds one table holding the rows of both inputs in order.
func concatTables(t *testing.T, parts ...*table.FactTable) *table.FactTable {
	t.Helper()
	b, err := table.NewBuilder(incSchema())
	if err != nil {
		t.Fatal(err)
	}
	for _, ft := range parts {
		for r := 0; r < ft.Rows(); r++ {
			row := table.Row{
				Coords:   []int{int(ft.CoordAt(r, 0, 1)), int(ft.CoordAt(r, 1, 1))},
				Measures: []float64{ft.MeasureColumn(0)[r]},
			}
			if err := b.Append(row); err != nil {
				t.Fatal(err)
			}
		}
	}
	ft, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ft
}

// cellsEqual compares two cubes cell by cell over the full grid.
func cellsEqual(t *testing.T, got, want *Cube) {
	t.Helper()
	if got.Rows() != want.Rows() || got.FilledCells() != want.FilledCells() {
		t.Fatalf("rows/filled: got (%d,%d), want (%d,%d)",
			got.Rows(), got.FilledCells(), want.Rows(), want.FilledCells())
	}
	coords := make([]uint32, len(want.Cards()))
	var walk func(d int)
	walk = func(d int) {
		if d == len(coords) {
			g, w := got.Get(coords), want.Get(coords)
			if g.Count != w.Count || math.Abs(g.Sum-w.Sum) > 1e-9 ||
				g.Min != w.Min || g.Max != w.Max {
				t.Fatalf("cell %v: got %+v, want %+v", coords, g, w)
			}
			return
		}
		for x := 0; x < want.Cards()[d]; x++ {
			coords[d] = uint32(x)
			walk(d + 1)
		}
	}
	walk(0)
}

func TestMergeCOWMatchesRebuild(t *testing.T) {
	base := incTable(t, 4000, 1)
	delta := incTable(t, 300, 2)
	whole := concatTables(t, base, delta)

	for _, level := range []int{0, 1} {
		cfg := Config{Workers: 1}
		bc, err := BuildFromTable(base, level, 0, cfg)
		if err != nil {
			t.Fatal(err)
		}
		dc, err := BuildFromTable(delta, level, 0, cfg)
		if err != nil {
			t.Fatal(err)
		}
		merged, err := bc.MergeCOW(dc)
		if err != nil {
			t.Fatal(err)
		}
		want, err := BuildFromTable(whole, level, 0, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cellsEqual(t, merged, want)

		// The base cube is untouched by the merge.
		again, err := BuildFromTable(base, level, 0, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cellsEqual(t, bc, again)
	}
}

func TestMergeCOWSharesUntouchedChunks(t *testing.T) {
	base := incTable(t, 4000, 3)
	bc, err := BuildFromTable(base, 1, 0, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// A single-row delta touches exactly one chunk.
	b, err := table.NewBuilder(incSchema())
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Append(table.Row{Coords: []int{0, 0}, Measures: []float64{5}}); err != nil {
		t.Fatal(err)
	}
	one, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	dc, err := BuildFromTable(one, 1, 0, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	merged, err := bc.MergeCOW(dc)
	if err != nil {
		t.Fatal(err)
	}
	shared, copied := 0, 0
	for i := range bc.chunks {
		if merged.chunks[i] == bc.chunks[i] {
			shared++
		} else {
			copied++
		}
	}
	if copied != 1 {
		t.Fatalf("copied %d chunks, want exactly 1 (shared %d)", copied, shared)
	}
	if shared == 0 {
		t.Fatal("expected untouched chunks to be shared by pointer")
	}
}

func TestSetMergeCOW(t *testing.T) {
	base := incTable(t, 3000, 4)
	delta := incTable(t, 200, 5)
	whole := concatTables(t, base, delta)

	s, err := BuildSet(base, []int{0, 1}, 0, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddVirtual(3); err != nil {
		t.Fatal(err)
	}
	shadows, err := s.ShadowFromTable(delta, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(shadows) != 2 {
		t.Fatalf("shadows = %d levels, want 2 (virtual level needs none)", len(shadows))
	}
	merged, err := s.MergeCOW(shadows)
	if err != nil {
		t.Fatal(err)
	}
	wantSet, err := BuildSet(whole, []int{0, 1}, 0, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range []int{0, 1} {
		got, _ := merged.Get(l)
		want, _ := wantSet.Get(l)
		cellsEqual(t, got, want)
	}
	if !merged.IsVirtual(3) {
		t.Fatal("virtual level lost in COW merge")
	}
	// Unshadowed merge carries cubes over by pointer.
	carry, err := s.MergeCOW(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range []int{0, 1} {
		a, _ := s.Get(l)
		b, _ := carry.Get(l)
		if a != b {
			t.Fatalf("level %d: expected pointer carry-over", l)
		}
	}
	// Shadow at an unregistered level is an error.
	bogus, err := BuildFromTable(delta, 0, 0, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.MergeCOW(map[int]*Cube{2: bogus}); err == nil {
		t.Fatal("expected error for shadow at unregistered level")
	}
}
