package cube

import (
	"fmt"
	"sort"

	"hybridolap/internal/table"
)

// Set is the multi-resolution cube store of the paper's Fig. 1: "one OLAP
// system can have multiple pre-calculated cubes with different
// resolutions". The CPU answers a query needing resolution R from the
// *coarsest* pre-calculated cube whose level is ≥ R, because "it is always
// desirable to respond to the query using a cube with lowest possible
// resolution to minimize memory accesses" (Sec. III-C). Queries needing a
// resolution finer than any stored cube must go to the GPU.
//
// A level may be registered as *virtual*: present for size estimation and
// scheduling (the system model's ~32 GB cube) without materialised cells.
// Aggregating on a virtual level fails; the system model never does,
// because it only consumes service-time estimates.
type Set struct {
	schema  *table.Schema
	measure int // fact-table measure index every cube aggregates
	cubes   map[int]*Cube
	virtual map[int]bool
	levels  []int // sorted union of real and virtual levels
}

// NewSet creates an empty set over a schema.
func NewSet(schema *table.Schema) *Set {
	return &Set{schema: schema, cubes: make(map[int]*Cube), virtual: make(map[int]bool)}
}

// Schema returns the schema the set's cubes are defined over.
func (s *Set) Schema() *table.Schema { return s.schema }

// Measure returns the fact-table measure index the set's cubes aggregate.
// Queries over a different measure cannot be answered from these cubes and
// must go to the GPU.
func (s *Set) Measure() int { return s.measure }

func (s *Set) noteLevel(l int) {
	for _, x := range s.levels {
		if x == l {
			return
		}
	}
	s.levels = append(s.levels, l)
	sort.Ints(s.levels)
}

// Add registers a materialised cube. Its geometry must match the schema at
// its level. Adding a real cube at a virtual level upgrades the level.
func (s *Set) Add(c *Cube) error {
	want := levelCards(s.schema, c.Level())
	got := c.Cards()
	if len(got) != len(want) {
		return fmt.Errorf("cube: set/schema dimension mismatch (%d vs %d)", len(got), len(want))
	}
	for d := range want {
		if got[d] != want[d] {
			return fmt.Errorf("cube: level %d cardinality mismatch in dimension %d (%d vs %d)",
				c.Level(), d, got[d], want[d])
		}
	}
	if len(s.cubes) == 0 {
		s.measure = c.Measure()
	} else if c.Measure() != s.measure {
		return fmt.Errorf("cube: set aggregates measure %d, cube aggregates %d", s.measure, c.Measure())
	}
	s.cubes[c.Level()] = c
	delete(s.virtual, c.Level())
	s.noteLevel(c.Level())
	return nil
}

// AddVirtual registers a level for estimation only. It is a no-op when a
// real cube already exists at that level.
func (s *Set) AddVirtual(level int) error {
	if level < 0 {
		return fmt.Errorf("cube: negative virtual level %d", level)
	}
	if _, ok := s.cubes[level]; ok {
		return nil
	}
	s.virtual[level] = true
	s.noteLevel(level)
	return nil
}

// Levels returns the registered levels (real and virtual) in increasing
// order.
func (s *Set) Levels() []int { return append([]int(nil), s.levels...) }

// IsVirtual reports whether a level is registered without cells.
func (s *Set) IsVirtual(level int) bool { return s.virtual[level] }

// Get returns the materialised cube at an exact level.
func (s *Set) Get(level int) (*Cube, bool) {
	c, ok := s.cubes[level]
	return c, ok
}

// PickLevel returns the coarsest registered level able to answer a query
// of resolution r — the minimum stored level ≥ r. ok is false when the
// query is too fine for every registered level (it must go to the GPU).
func (s *Set) PickLevel(r int) (int, bool) {
	for _, l := range s.levels {
		if l >= r {
			return l, true
		}
	}
	return 0, false
}

// ExpandBox rewrites a box expressed at query resolution fromLevel into
// coordinates at toLevel (≥ fromLevel). The schema's exact-multiple
// hierarchy makes the rewrite lossless.
func (s *Set) ExpandBox(box Box, fromLevel, toLevel int) (Box, error) {
	if len(box) != len(s.schema.Dimensions) {
		return nil, fmt.Errorf("cube: box has %d dims, schema %d", len(box), len(s.schema.Dimensions))
	}
	if toLevel < fromLevel {
		return nil, fmt.Errorf("cube: cannot answer level-%d query at coarser level %d", fromLevel, toLevel)
	}
	out := make(Box, len(box))
	for d, dim := range s.schema.Dimensions {
		fl, cl := fromLevel, toLevel
		if fl > dim.Finest() {
			fl = dim.Finest()
		}
		if cl > dim.Finest() {
			cl = dim.Finest()
		}
		ratio := uint32(dim.Levels[cl].Cardinality / dim.Levels[fl].Cardinality)
		out[d] = Range{From: box[d].From * ratio, To: (box[d].To+1)*ratio - 1}
	}
	return out, nil
}

// SubCubeBytes estimates the sub-cube size (eq. 3) a query at resolution r
// with the given box would stream from the picked level. ok is false when
// no registered level can answer it. Works for virtual levels: only
// geometry is consulted.
func (s *Set) SubCubeBytes(box Box, r int) (int64, bool) {
	l, ok := s.PickLevel(r)
	if !ok {
		return 0, false
	}
	eb, err := s.ExpandBox(box, r, l)
	if err != nil {
		return 0, false
	}
	return eb.Bytes(), true
}

// Aggregate answers a query: box is at resolution r; the set picks the
// coarsest adequate level, expands the box, and runs the (possibly
// parallel) aggregation. It fails when the picked level is virtual. The
// chosen cube is returned for telemetry.
func (s *Set) Aggregate(box Box, r, workers int) (Agg, *Cube, error) {
	l, ok := s.PickLevel(r)
	if !ok {
		return Agg{}, nil, fmt.Errorf("cube: no stored cube at level >= %d", r)
	}
	c, ok := s.cubes[l]
	if !ok {
		return Agg{}, nil, fmt.Errorf("cube: level %d is virtual (estimation only)", l)
	}
	eb, err := s.ExpandBox(box, r, l)
	if err != nil {
		return Agg{}, nil, err
	}
	agg, err := c.Aggregate(eb, workers)
	if err != nil {
		return Agg{}, nil, err
	}
	return agg, c, nil
}

// TotalStorageBytes sums the in-memory footprint of all materialised cubes
// — the quantity bounded by main-memory size in Fig. 1 (level M).
func (s *Set) TotalStorageBytes() int64 {
	var n int64
	for _, c := range s.cubes {
		n += c.StorageBytes()
	}
	return n
}

// LogicalBytesAt returns the uncompressed cube size at a level (real or
// virtual): the product of the level's cardinalities times CellSize.
func (s *Set) LogicalBytesAt(level int) int64 {
	n := int64(CellSize)
	for _, card := range levelCards(s.schema, level) {
		n *= int64(card)
	}
	return n
}

// BuildSet pre-calculates cubes at the given levels from a fact table,
// mirroring the paper's evaluation setup ("the CPU has 4 pre-calculated
// OLAP cubes"). All cubes aggregate the same measure.
func BuildSet(ft *table.FactTable, levels []int, measure int, cfg Config) (*Set, error) {
	s := NewSet(ft.Schema())
	for _, l := range levels {
		c, err := BuildFromTable(ft, l, measure, cfg)
		if err != nil {
			return nil, err
		}
		if err := s.Add(c); err != nil {
			return nil, err
		}
	}
	return s, nil
}
