package cube

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"hybridolap/internal/table"
)

// DefaultChunkSide is the per-dimension side of a chunk. The paper's [20]
// sizes chunks to the disk blocking factor; in memory we size them so a
// chunk (16^3 cells × 32 B = 128 KiB for 3 dims) streams well through the
// cache hierarchy.
const DefaultChunkSide = 16

// Cube is a dense array-based MOLAP cube at one resolution level, chunked
// into side^N tiles.
type Cube struct {
	level int   // scalar resolution level (paper Fig. 1)
	cards []int // cardinality per dimension at this level
	side  int   // chunk side
	grid  []int // chunks per dimension
	vol   int   // side^N, cells per chunk

	chunks []*chunk

	measure int   // fact-table measure index the cells aggregate
	filled  int64 // non-empty cells
	rows    int64 // fact rows aggregated into the cube
}

// Config controls cube construction.
type Config struct {
	// ChunkSide overrides DefaultChunkSide when > 0.
	ChunkSide int
	// Workers sets build parallelism; <= 0 means GOMAXPROCS.
	Workers int
	// Compress enables the 40% chunk-offset compression pass (on by
	// default through Build*; set by callers of newCube directly).
	Compress bool
	// Rng, when set, is the source of all pseudo-random draws made while
	// building (BuildSynthetic's fill pattern and aggregate values). When
	// nil, BuildSynthetic derives one from its seed argument, so the same
	// (geometry, fill, seed) triple always yields a bit-identical cube.
	// The global math/rand source is never used (enforced by the
	// seededrand analyzer): cube contents feed bandwidth benchmarks and
	// calibration tables that must be reproducible run-to-run.
	Rng *rand.Rand
}

// newCube allocates cube geometry with all chunks empty.
func newCube(level int, cards []int, side int) (*Cube, error) {
	if len(cards) == 0 {
		return nil, fmt.Errorf("cube: no dimensions")
	}
	if side <= 0 {
		side = DefaultChunkSide
	}
	c := &Cube{level: level, cards: append([]int(nil), cards...), side: side}
	c.grid = make([]int, len(cards))
	nChunks := 1
	vol := 1
	for d, card := range cards {
		if card <= 0 {
			return nil, fmt.Errorf("cube: cardinality %d in dimension %d", card, d)
		}
		c.grid[d] = (card + side - 1) / side
		nChunks *= c.grid[d]
		vol *= side
	}
	c.vol = vol
	c.chunks = make([]*chunk, nChunks)
	return c, nil
}

// Level returns the cube's resolution level.
func (c *Cube) Level() int { return c.level }

// Measure returns the fact-table measure index the cube aggregates.
func (c *Cube) Measure() int { return c.measure }

// Cards returns the per-dimension cardinalities (do not modify).
func (c *Cube) Cards() []int { return c.cards }

// Dims returns the number of dimensions.
func (c *Cube) Dims() int { return len(c.cards) }

// FilledCells returns the number of non-empty cells.
func (c *Cube) FilledCells() int64 { return c.filled }

// Rows returns the number of fact rows aggregated into the cube.
func (c *Cube) Rows() int64 { return c.rows }

// LogicalCells returns the total addressable cells (product of cards).
func (c *Cube) LogicalCells() int64 {
	n := int64(1)
	for _, card := range c.cards {
		n *= int64(card)
	}
	return n
}

// LogicalBytes returns the uncompressed cube size: LogicalCells × CellSize.
// This is the "cube size" axis of the paper's Figs. 1 and 3.
func (c *Cube) LogicalBytes() int64 { return c.LogicalCells() * CellSize }

// StorageBytes returns the actual in-memory footprint after compression.
func (c *Cube) StorageBytes() int64 {
	var n int64
	for _, ch := range c.chunks {
		n += ch.bytes()
	}
	return n
}

// FillFactor returns filled / logical cells.
func (c *Cube) FillFactor() float64 {
	lc := c.LogicalCells()
	if lc == 0 {
		return 0
	}
	return float64(c.filled) / float64(lc)
}

// chunkOf returns the chunk grid index and local offset for global coords.
func (c *Cube) chunkOf(coords []uint32) (chunkIdx int, localOff uint32) {
	for d, x := range coords {
		g := int(x) / c.side
		l := int(x) % c.side
		chunkIdx = chunkIdx*c.grid[d] + g
		localOff = localOff*uint32(c.side) + uint32(l)
	}
	return chunkIdx, localOff
}

// Get returns the cell at global coordinates (zero Cell when empty or out
// of range).
func (c *Cube) Get(coords []uint32) Cell {
	if len(coords) != len(c.cards) {
		return Cell{}
	}
	for d, x := range coords {
		if int(x) >= c.cards[d] {
			return Cell{}
		}
	}
	ci, off := c.chunkOf(coords)
	return c.chunks[ci].get(off)
}

// add folds a measure value into the cell at coords, allocating the dense
// chunk on demand (and decompressing if needed).
func (c *Cube) add(coords []uint32, v float64) {
	ci, off := c.chunkOf(coords)
	ch := c.chunks[ci]
	if ch == nil || !ch.isDense() {
		ch = ch.decompress(c.vol)
		c.chunks[ci] = ch
	}
	cell := &ch.dense[off]
	if cell.Count == 0 {
		ch.filled++
		c.filled++
	}
	cell.add(v)
	c.rows++
}

// compressAll applies the 40% rule to every chunk.
func (c *Cube) compressAll() {
	for i, ch := range c.chunks {
		c.chunks[i] = ch.compress()
	}
}

// mergeFrom folds another cube with identical geometry into c.
func (c *Cube) mergeFrom(o *Cube) error {
	if len(o.cards) != len(c.cards) || o.side != c.side {
		return fmt.Errorf("cube: merge geometry mismatch")
	}
	for d := range c.cards {
		if c.cards[d] != o.cards[d] {
			return fmt.Errorf("cube: merge cardinality mismatch in dimension %d", d)
		}
	}
	for i, och := range o.chunks {
		if och == nil {
			continue
		}
		ch := c.chunks[i]
		if ch == nil || !ch.isDense() {
			ch = ch.decompress(c.vol)
			c.chunks[i] = ch
		}
		fold := func(off uint32, cell Cell) {
			dst := &ch.dense[off]
			if dst.Count == 0 && cell.Count != 0 {
				ch.filled++
				c.filled++
			}
			dst.merge(cell)
		}
		if och.isDense() {
			for off, cell := range och.dense {
				if cell.Count != 0 {
					fold(uint32(off), cell)
				}
			}
		} else {
			for k, off := range och.offsets {
				fold(off, och.cells[k])
			}
		}
	}
	c.rows += o.rows
	return nil
}

// levelCards returns per-dimension cardinalities of a fact-table schema at
// scalar resolution level (clamped to each dimension's finest level).
func levelCards(s *table.Schema, level int) []int {
	cards := make([]int, len(s.Dimensions))
	for d, dim := range s.Dimensions {
		l := level
		if l > dim.Finest() {
			l = dim.Finest()
		}
		cards[d] = dim.Levels[l].Cardinality
	}
	return cards
}

// BuildFromTable aggregates a fact table into a cube at the given scalar
// resolution level, summing the named measure. Workers > 1 partitions the
// rows statically, builds partial cubes and merges them — the same
// fork/join shape as the paper's OpenMP build.
func BuildFromTable(ft *table.FactTable, level, measure int, cfg Config) (*Cube, error) {
	s := ft.Schema()
	if measure < 0 || measure >= len(s.Measures) {
		return nil, fmt.Errorf("cube: measure %d out of range", measure)
	}
	if level < 0 {
		return nil, fmt.Errorf("cube: negative level %d", level)
	}
	cards := levelCards(s, level)
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > ft.Rows() && ft.Rows() > 0 {
		workers = ft.Rows()
	}
	if workers < 1 {
		workers = 1
	}

	// Per-dimension level index used for row coordinates.
	lvlOf := make([]int, len(s.Dimensions))
	for d, dim := range s.Dimensions {
		lvlOf[d] = level
		if lvlOf[d] > dim.Finest() {
			lvlOf[d] = dim.Finest()
		}
	}
	meas := ft.MeasureColumn(measure)

	buildPart := func(lo, hi int) (*Cube, error) {
		part, err := newCube(level, cards, cfg.ChunkSide)
		if err != nil {
			return nil, err
		}
		coords := make([]uint32, len(cards))
		for r := lo; r < hi; r++ {
			for d := range cards {
				coords[d] = ft.CoordAt(r, d, lvlOf[d])
			}
			part.add(coords, meas[r])
		}
		return part, nil
	}

	if workers == 1 {
		c, err := buildPart(0, ft.Rows())
		if err != nil {
			return nil, err
		}
		c.measure = measure
		c.compressAll()
		return c, nil
	}

	parts := make([]*Cube, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	stripe := (ft.Rows() + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * stripe
		hi := lo + stripe
		if hi > ft.Rows() {
			hi = ft.Rows()
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			parts[w], errs[w] = buildPart(lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	var out *Cube
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			return nil, errs[w]
		}
		if parts[w] == nil {
			continue
		}
		if out == nil {
			out = parts[w]
			continue
		}
		if err := out.mergeFrom(parts[w]); err != nil {
			return nil, err
		}
	}
	if out == nil {
		out, _ = newCube(level, cards, cfg.ChunkSide)
	}
	out.measure = measure
	out.compressAll()
	return out, nil
}

// BuildSynthetic creates a cube of the given geometry with approximately
// fill×cells non-empty cells carrying pseudo-random aggregates. It exists
// for bandwidth benchmarks (paper Fig. 3) where cube *size* matters and
// provenance does not. fill is clamped to [0, 1].
func BuildSynthetic(level int, cards []int, fill float64, seed int64, cfg Config) (*Cube, error) {
	c, err := newCube(level, cards, cfg.ChunkSide)
	if err != nil {
		return nil, err
	}
	if fill < 0 {
		fill = 0
	}
	if fill > 1 {
		fill = 1
	}
	rng := cfg.Rng
	if rng == nil {
		rng = rand.New(rand.NewSource(seed))
	}
	coords := make([]uint32, len(cards))
	var walk func(d int)
	walk = func(d int) {
		if d == len(cards) {
			if rng.Float64() < fill {
				c.add(coords, rng.Float64()*100)
			}
			return
		}
		for x := 0; x < cards[d]; x++ {
			coords[d] = uint32(x)
			walk(d + 1)
		}
	}
	walk(0)
	if cfg.Compress {
		c.compressAll()
	}
	return c, nil
}
