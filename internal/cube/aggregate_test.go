package cube

import (
	"math"
	"math/rand"
	"testing"
)

// cellwiseAgg is the slowest possible reference: fold every coordinate of
// the box through the public Get accessor, in odometer order — no chunk
// enumeration, no run kernels, no occupancy metadata.
func cellwiseAgg(c *Cube, box Box) Agg {
	var acc Agg
	n := c.Dims()
	coords := make([]uint32, n)
	for d := 0; d < n; d++ {
		coords[d] = box[d].From
	}
	for {
		acc.fold(c.Get(coords))
		d := n - 1
		for d >= 0 {
			coords[d]++
			if coords[d] <= box[d].To {
				break
			}
			coords[d] = box[d].From
			d--
		}
		if d < 0 {
			return acc
		}
	}
}

func cubeAggEqual(a, b Agg) bool {
	if a.Count != b.Count {
		return false
	}
	if a.Count == 0 {
		return true
	}
	// Count, Min and Max are exact under any fold order. Sum regroups:
	// the chunked kernel merges per-chunk partials, the cellwise
	// reference adds in one global odometer order, so the two round
	// differently in the last ulps (true before the specialized kernels
	// too — see aggEqual in cube_test.go).
	return math.Abs(a.Sum-b.Sum) < 1e-6 && a.Min == b.Min && a.Max == b.Max
}

// TestAggregateDifferentialAcrossFills drives the specialized fold kernels
// through every storage form: fill 1.0 produces fully occupied dense
// chunks (the foldRunFull whole-chunk and run paths), 0.6 partially filled
// dense chunks (foldRun with the occupancy test), 0.2 and 0.05 compressed
// chunks (whole-chunk full fold of the cells array, and per-offset
// membership decode). Cards not divisible by the chunk side exercise the
// clamped edge chunks, where "whole" must stay false.
func TestAggregateDifferentialAcrossFills(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, fill := range []float64{1.0, 0.6, 0.2, 0.05} {
		for _, cards := range [][]int{{13, 21}, {16, 32}, {9, 10, 11}} {
			c, err := BuildSynthetic(0, cards, fill, 5, Config{ChunkSide: 8, Compress: true})
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 40; trial++ {
				box := make(Box, len(cards))
				for d, card := range cards {
					a, b := uint32(rng.Intn(card)), uint32(rng.Intn(card))
					if a > b {
						a, b = b, a
					}
					box[d] = Range{From: a, To: b}
				}
				want := cellwiseAgg(c, box)
				got, err := c.Aggregate(box, 1)
				if err != nil {
					t.Fatal(err)
				}
				if !cubeAggEqual(want, got) {
					t.Fatalf("fill=%v cards=%v box=%v:\ncellwise=%+v\nchunked =%+v",
						fill, cards, box, want, got)
				}
				// The parallel fold merges per-worker partials; Count,
				// Min and Max stay exact, Sum regroups.
				par, err := c.Aggregate(box, 3)
				if err != nil {
					t.Fatal(err)
				}
				if par.Count != want.Count {
					t.Fatalf("parallel count %d != %d", par.Count, want.Count)
				}
				if want.Count != 0 && (par.Min != want.Min || par.Max != want.Max) {
					t.Fatalf("parallel min/max diverged: %+v vs %+v", par, want)
				}
			}
		}
	}
}

// TestAggregateFullChunkWholeBox pins the foldRunFull whole-chunk path: a
// fill-1.0 cube whose cards are exact multiples of the chunk side, queried
// with the all-covering box, visits every chunk as whole and fully
// occupied.
func TestAggregateFullChunkWholeBox(t *testing.T) {
	cards := []int{16, 32}
	c, err := BuildSynthetic(0, cards, 1.0, 9, Config{ChunkSide: 8, Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	if c.FilledCells() != int64(16*32) {
		t.Fatalf("expected fully filled cube, got %d cells", c.FilledCells())
	}
	box := Box{{From: 0, To: 15}, {From: 0, To: 31}}
	want := cellwiseAgg(c, box)
	got, err := c.Aggregate(box, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !cubeAggEqual(want, got) {
		t.Fatalf("whole-box full-chunk fold diverged:\ncellwise=%+v\nchunked =%+v", want, got)
	}
	if got.Count != int64(16*32) {
		t.Fatalf("count %d, want every cell", got.Count)
	}
}

// raceEnabled is set by race_enabled_test.go under -race, where the
// detector's instrumentation (and sync.Pool's race hooks) make
// AllocsPerRun meaningless.
var raceEnabled = false

// TestAggregateSteadyStateAllocs pins the pooled chunk enumeration: after
// warmup, a sequential Aggregate allocates nothing — no per-chunk local
// Box, no per-call work-item slice.
func TestAggregateSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	c, err := BuildSynthetic(0, []int{48, 48}, 0.7, 3, Config{ChunkSide: 8, Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	box := Box{{From: 3, To: 44}, {From: 5, To: 40}}
	if _, err := c.Aggregate(box, 1); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := c.Aggregate(box, 1); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state sequential Aggregate allocates %v objects/op; want 0", allocs)
	}
}
