// Package cube implements the MOLAP side of the hybrid OLAP system: dense
// array-based data cubes in the style of Zhao, Deshpande & Naughton (the
// paper's [20]), chunked into fixed-size n-dimensional chunks with
// chunk-offset compression for sparse chunks, organised into a
// multi-resolution set (paper Fig. 1), and aggregated by a parallel worker
// pool — the Go analogue of the paper's OpenMP implementation.
//
// Cube processing "is always constrained by memory bandwidth and not by the
// performance of the CPU" (Sec. III-B), so the aggregation loops stream
// chunk storage linearly and the parallel version partitions chunks
// statically across workers.
package cube

import "fmt"

// Cell is one aggregate cell of the cube. It carries enough state to answer
// sum, count, avg, min and max queries exactly, matching what a fact-table
// scan over the same rows would produce.
type Cell struct {
	Sum   float64
	Count int64
	Min   float64
	Max   float64
}

// CellSize is E_size in eq. (3): the in-memory size of one cell in bytes.
const CellSize = 32

// add folds one measure value into the cell.
//
//olaplint:noalloc
func (c *Cell) add(v float64) {
	if c.Count == 0 || v < c.Min {
		c.Min = v
	}
	if c.Count == 0 || v > c.Max {
		c.Max = v
	}
	c.Sum += v
	c.Count++
}

// merge folds another cell into this one.
//
//olaplint:noalloc
func (c *Cell) merge(o Cell) {
	if o.Count == 0 {
		return
	}
	if c.Count == 0 {
		*c = o
		return
	}
	if o.Min < c.Min {
		c.Min = o.Min
	}
	if o.Max > c.Max {
		c.Max = o.Max
	}
	c.Sum += o.Sum
	c.Count += o.Count
}

// Agg is the result of aggregating a region of the cube.
type Agg struct {
	Sum   float64
	Count int64
	Min   float64
	Max   float64
}

// fold accumulates a cell into the aggregate.
//
//olaplint:noalloc
func (a *Agg) fold(c Cell) {
	if c.Count == 0 {
		return
	}
	if a.Count == 0 {
		a.Min, a.Max = c.Min, c.Max
	} else {
		if c.Min < a.Min {
			a.Min = c.Min
		}
		if c.Max > a.Max {
			a.Max = c.Max
		}
	}
	a.Sum += c.Sum
	a.Count += c.Count
}

// foldRun accumulates a contiguous run of cells, skipping empties — the
// generic dense-chunk kernel for partially filled runs.
//
//olaplint:noalloc
func (a *Agg) foldRun(run []Cell) {
	for i := range run {
		if run[i].Count != 0 {
			a.fold(run[i])
		}
	}
}

// foldRunFull accumulates a run known to contain no empty cell (chunk
// occupancy metadata says so: a dense chunk with filled == volume, or the
// cells array of a compressed chunk, which stores filled cells only). The
// per-cell Count != 0 occupancy test and the per-cell empty-accumulator
// branch both vanish from the loop; results are identical to foldRun
// cell by cell.
//
//olaplint:noalloc
func (a *Agg) foldRunFull(run []Cell) {
	if len(run) == 0 {
		return
	}
	if a.Count == 0 {
		a.Min, a.Max = run[0].Min, run[0].Max
	}
	for i := range run {
		c := &run[i]
		a.Sum += c.Sum
		a.Count += c.Count
		if c.Min < a.Min {
			a.Min = c.Min
		}
		if c.Max > a.Max {
			a.Max = c.Max
		}
	}
}

// Merge combines two partial aggregates.
func (a Agg) Merge(b Agg) Agg {
	var out Agg
	switch {
	case a.Count == 0:
		return b
	case b.Count == 0:
		return a
	}
	out.Sum = a.Sum + b.Sum
	out.Count = a.Count + b.Count
	out.Min = a.Min
	if b.Min < out.Min {
		out.Min = b.Min
	}
	out.Max = a.Max
	if b.Max > out.Max {
		out.Max = b.Max
	}
	return out
}

// Avg returns Sum/Count (0 for an empty aggregate).
func (a Agg) Avg() float64 {
	if a.Count == 0 {
		return 0
	}
	return a.Sum / float64(a.Count)
}

// Range is an inclusive coordinate interval in one dimension, the paper's
// (f, t) pair of a condition.
type Range struct {
	From, To uint32
}

// Width returns the number of coordinates covered.
func (r Range) Width() int64 {
	if r.To < r.From {
		return 0
	}
	return int64(r.To) - int64(r.From) + 1
}

// Box is an axis-aligned region of the cube: one Range per dimension,
// expressed in the cube's own level coordinates.
type Box []Range

// Cells returns the number of cells the box covers (the sub-cube size of
// eq. (3) divided by E_size).
func (b Box) Cells() int64 {
	n := int64(1)
	for _, r := range b {
		n *= r.Width()
	}
	return n
}

// Bytes returns the sub-cube size in bytes (eq. (3)).
func (b Box) Bytes() int64 { return b.Cells() * CellSize }

// validate clamps/checks the box against cube cardinalities.
func (b Box) validate(cards []int) error {
	if len(b) != len(cards) {
		return fmt.Errorf("cube: box has %d dimensions, cube has %d", len(b), len(cards))
	}
	for d, r := range b {
		if r.To < r.From {
			return fmt.Errorf("cube: inverted range %v in dimension %d", r, d)
		}
		if int64(r.To) >= int64(cards[d]) {
			return fmt.Errorf("cube: range %v exceeds cardinality %d in dimension %d", r, cards[d], d)
		}
	}
	return nil
}
