package cube

import (
	"math/rand"
	"testing"
)

// cubesEquivalent compares two cubes cell by cell.
func cubesEquivalent(t *testing.T, a, b *Cube) {
	t.Helper()
	if a.Level() != b.Level() || a.FilledCells() != b.FilledCells() || a.Rows() != b.Rows() {
		t.Fatalf("cube metadata differs: level %d/%d filled %d/%d rows %d/%d",
			a.Level(), b.Level(), a.FilledCells(), b.FilledCells(), a.Rows(), b.Rows())
	}
	cards := a.Cards()
	coords := make([]uint32, len(cards))
	var walk func(d int)
	var bad bool
	walk = func(d int) {
		if bad {
			return
		}
		if d == len(cards) {
			ca, cb := a.Get(coords), b.Get(coords)
			if ca.Count != cb.Count || ca.Min != cb.Min || ca.Max != cb.Max ||
				ca.Sum-cb.Sum > 1e-6 || cb.Sum-ca.Sum > 1e-6 {
				t.Errorf("cell %v differs: %+v vs %+v", coords, ca, cb)
				bad = true
			}
			return
		}
		for x := 0; x < cards[d]; x++ {
			coords[d] = uint32(x)
			walk(d + 1)
		}
	}
	walk(0)
}

func TestRollupEqualsDirectBuild(t *testing.T) {
	ft := genTable(t, 4000, 31)
	fine, err := BuildFromTable(ft, 1, 0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rolled, err := Rollup(fine, ft.Schema(), 0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := BuildFromTable(ft, 0, 0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	cubesEquivalent(t, rolled, direct)
}

func TestRollupSameLevelIsIdentity(t *testing.T) {
	ft := genTable(t, 1000, 32)
	fine, _ := BuildFromTable(ft, 1, 0, Config{})
	same, err := Rollup(fine, ft.Schema(), 1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	cubesEquivalent(t, same, fine)
}

func TestRollupValidation(t *testing.T) {
	ft := genTable(t, 100, 33)
	coarse, _ := BuildFromTable(ft, 0, 0, Config{})
	if _, err := Rollup(coarse, ft.Schema(), 1, Config{}); err == nil {
		t.Fatal("rollup to finer level accepted")
	}
	if _, err := Rollup(coarse, ft.Schema(), -1, Config{}); err == nil {
		t.Fatal("negative level accepted")
	}
	// Geometry mismatch: synthetic cube not matching the schema.
	syn, _ := BuildSynthetic(1, []int{5, 5}, 1, 1, Config{})
	if _, err := Rollup(syn, ft.Schema(), 0, Config{}); err == nil {
		t.Fatal("schema-mismatched cube accepted")
	}
}

func TestRollupPreservesMeasure(t *testing.T) {
	ft := genTable(t, 200, 34)
	fine, _ := BuildFromTable(ft, 1, 0, Config{})
	rolled, err := Rollup(fine, ft.Schema(), 0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rolled.Measure() != fine.Measure() {
		t.Fatalf("measure lost: %d vs %d", rolled.Measure(), fine.Measure())
	}
}

func TestRollupFromCompressedSource(t *testing.T) {
	// A sparse fine cube compresses its chunks; rollup must read them.
	ft := genTable(t, 60, 35) // 60 rows in a 36x50 level-1 cube: sparse
	fine, _ := BuildFromTable(ft, 1, 0, Config{})
	if fine.StorageBytes() >= fine.LogicalBytes() {
		t.Skip("fine cube unexpectedly dense; sparsity precondition failed")
	}
	rolled, err := Rollup(fine, ft.Schema(), 0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := BuildFromTable(ft, 0, 0, Config{})
	cubesEquivalent(t, rolled, direct)
}

func TestBuildSetByRollupEqualsDirect(t *testing.T) {
	ft := genTable(t, 3000, 36)
	viaRollup, err := BuildSetByRollup(ft, []int{1, 0}, 0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := BuildSet(ft, []int{0, 1}, 0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(viaRollup.Levels()) != 2 {
		t.Fatalf("levels = %v", viaRollup.Levels())
	}
	// Random boxes agree between the two sets at both levels.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		level := rng.Intn(2)
		c, _ := direct.Get(level)
		cards := c.Cards()
		box := make(Box, len(cards))
		for d, card := range cards {
			f := uint32(rng.Intn(card))
			to := f + uint32(rng.Intn(card-int(f)))
			box[d] = Range{f, to}
		}
		a, _, err := viaRollup.Aggregate(box, level, 1)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := direct.Aggregate(box, level, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !aggEqual(a, b) {
			t.Fatalf("trial %d level %d box %v: %+v vs %+v", trial, level, box, a, b)
		}
	}
}

func TestBuildSetByRollupValidation(t *testing.T) {
	ft := genTable(t, 10, 37)
	if _, err := BuildSetByRollup(ft, nil, 0, Config{}); err == nil {
		t.Fatal("empty level list accepted")
	}
	// Duplicate levels are deduplicated, not an error.
	s, err := BuildSetByRollup(ft, []int{1, 1, 0}, 0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Levels()) != 2 {
		t.Fatalf("levels = %v", s.Levels())
	}
}

func BenchmarkRollup(b *testing.B) {
	ft := genTable(b, 50_000, 38)
	fine, err := BuildFromTable(ft, 1, 0, Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Rollup(fine, ft.Schema(), 0, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}
