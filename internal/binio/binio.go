// Package binio provides sticky-error little-endian binary encoding with
// running CRC-32 checksums, used by the table and cube persistence
// formats. Writers and readers carry the first error; callers check once
// at the end instead of after every field.
package binio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
)

// MaxStringLen bounds length-prefixed strings, as a corruption guard.
const MaxStringLen = 1 << 20

// Writer encodes values to an underlying io.Writer.
type Writer struct {
	w   *bufio.Writer
	crc hash.Hash32
	err error
	buf [8]byte
	n   int64
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16), crc: crc32.NewIEEE()}
}

// Err returns the first write error.
func (w *Writer) Err() error { return w.err }

// Written returns bytes written so far (pre-flush accounting).
func (w *Writer) Written() int64 { return w.n }

func (w *Writer) write(p []byte) {
	if w.err != nil {
		return
	}
	if _, err := w.w.Write(p); err != nil {
		w.err = err
		return
	}
	w.crc.Write(p)
	w.n += int64(len(p))
}

// U8 writes one byte.
func (w *Writer) U8(v uint8) { w.buf[0] = v; w.write(w.buf[:1]) }

// U16 writes a little-endian uint16.
func (w *Writer) U16(v uint16) { binary.LittleEndian.PutUint16(w.buf[:2], v); w.write(w.buf[:2]) }

// U32 writes a little-endian uint32.
func (w *Writer) U32(v uint32) { binary.LittleEndian.PutUint32(w.buf[:4], v); w.write(w.buf[:4]) }

// U64 writes a little-endian uint64.
func (w *Writer) U64(v uint64) { binary.LittleEndian.PutUint64(w.buf[:8], v); w.write(w.buf[:8]) }

// I64 writes a little-endian int64.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// F64 writes an IEEE-754 float64.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// String writes a length-prefixed UTF-8 string.
func (w *Writer) String(s string) {
	if len(s) > MaxStringLen {
		w.fail(fmt.Errorf("binio: string of %d bytes exceeds limit", len(s)))
		return
	}
	w.U32(uint32(len(s)))
	w.write([]byte(s))
}

// U32s writes a uint32 slice (length-prefixed).
func (w *Writer) U32s(v []uint32) {
	w.U64(uint64(len(v)))
	for _, x := range v {
		w.U32(x)
	}
}

// F64s writes a float64 slice (length-prefixed).
func (w *Writer) F64s(v []float64) {
	w.U64(uint64(len(v)))
	for _, x := range v {
		w.F64(x)
	}
}

func (w *Writer) fail(err error) {
	if w.err == nil {
		w.err = err
	}
}

// Sum writes the running CRC-32 and flushes. Call exactly once, last.
func (w *Writer) Sum() error {
	if w.err != nil {
		return w.err
	}
	sum := w.crc.Sum32()
	binary.LittleEndian.PutUint32(w.buf[:4], sum)
	if _, err := w.w.Write(w.buf[:4]); err != nil {
		w.err = err
		return err
	}
	return w.w.Flush()
}

// Reader decodes values written by Writer.
type Reader struct {
	r   *bufio.Reader
	crc hash.Hash32
	err error
	buf [8]byte
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 1<<16), crc: crc32.NewIEEE()}
}

// Err returns the first read error.
func (r *Reader) Err() error { return r.err }

func (r *Reader) read(p []byte) {
	if r.err != nil {
		for i := range p {
			p[i] = 0
		}
		return
	}
	if _, err := io.ReadFull(r.r, p); err != nil {
		r.err = fmt.Errorf("binio: short read: %w", err)
		for i := range p {
			p[i] = 0
		}
		return
	}
	r.crc.Write(p)
}

// U8 reads one byte.
func (r *Reader) U8() uint8 { r.read(r.buf[:1]); return r.buf[0] }

// U16 reads a uint16.
func (r *Reader) U16() uint16 { r.read(r.buf[:2]); return binary.LittleEndian.Uint16(r.buf[:2]) }

// U32 reads a uint32.
func (r *Reader) U32() uint32 { r.read(r.buf[:4]); return binary.LittleEndian.Uint32(r.buf[:4]) }

// U64 reads a uint64.
func (r *Reader) U64() uint64 { r.read(r.buf[:8]); return binary.LittleEndian.Uint64(r.buf[:8]) }

// I64 reads an int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// F64 reads a float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.U32()
	if r.err != nil {
		return ""
	}
	if n > MaxStringLen {
		r.fail(fmt.Errorf("binio: string length %d exceeds limit", n))
		return ""
	}
	p := make([]byte, n)
	r.read(p)
	return string(p)
}

// Len reads a length prefix bounded by max (corruption guard).
func (r *Reader) Len(max int) int {
	n := r.U64()
	if r.err != nil {
		return 0
	}
	if n > uint64(max) {
		r.fail(fmt.Errorf("binio: length %d exceeds limit %d", n, max))
		return 0
	}
	return int(n)
}

// U32s reads a uint32 slice bounded by max elements.
func (r *Reader) U32s(max int) []uint32 {
	n := r.Len(max)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = r.U32()
	}
	return out
}

// F64s reads a float64 slice bounded by max elements.
func (r *Reader) F64s(max int) []float64 {
	n := r.Len(max)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.F64()
	}
	return out
}

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// CheckSum reads the trailing CRC-32 and verifies it against everything
// decoded so far. Call exactly once, last.
func (r *Reader) CheckSum() error {
	if r.err != nil {
		return r.err
	}
	want := r.crc.Sum32()
	var p [4]byte
	if _, err := io.ReadFull(r.r, p[:]); err != nil {
		return fmt.Errorf("binio: reading checksum: %w", err)
	}
	got := binary.LittleEndian.Uint32(p[:])
	if got != want {
		return fmt.Errorf("binio: checksum mismatch: file %08x, computed %08x", got, want)
	}
	return nil
}
