package binio

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U8(7)
	w.U16(65535)
	w.U32(123456)
	w.U64(1 << 60)
	w.I64(-42)
	w.F64(3.14159)
	w.String("hello world")
	w.String("")
	w.U32s([]uint32{1, 2, 3})
	w.U32s(nil)
	w.F64s([]float64{-1.5, 2.5})
	if err := w.Sum(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	if got := r.U8(); got != 7 {
		t.Fatalf("U8 = %d", got)
	}
	if got := r.U16(); got != 65535 {
		t.Fatalf("U16 = %d", got)
	}
	if got := r.U32(); got != 123456 {
		t.Fatalf("U32 = %d", got)
	}
	if got := r.U64(); got != 1<<60 {
		t.Fatalf("U64 = %d", got)
	}
	if got := r.I64(); got != -42 {
		t.Fatalf("I64 = %d", got)
	}
	if got := r.F64(); got != 3.14159 {
		t.Fatalf("F64 = %v", got)
	}
	if got := r.String(); got != "hello world" {
		t.Fatalf("String = %q", got)
	}
	if got := r.String(); got != "" {
		t.Fatalf("empty String = %q", got)
	}
	u := r.U32s(10)
	if len(u) != 3 || u[2] != 3 {
		t.Fatalf("U32s = %v", u)
	}
	if got := r.U32s(10); got != nil {
		t.Fatalf("nil U32s = %v", got)
	}
	f := r.F64s(10)
	if len(f) != 2 || f[0] != -1.5 {
		t.Fatalf("F64s = %v", f)
	}
	if err := r.CheckSum(); err != nil {
		t.Fatal(err)
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U64(42)
	w.String("payload")
	if err := w.Sum(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[3] ^= 0xFF // flip a payload bit

	r := NewReader(bytes.NewReader(data))
	_ = r.U64()
	_ = r.String()
	if err := r.CheckSum(); err == nil {
		t.Fatal("corruption undetected")
	}
}

func TestShortReadSticky(t *testing.T) {
	r := NewReader(strings.NewReader("ab"))
	r.U64() // needs 8 bytes
	if r.Err() == nil {
		t.Fatal("short read undetected")
	}
	// Subsequent reads stay failed and return zero values.
	if got := r.U32(); got != 0 || r.Err() == nil {
		t.Fatal("sticky error not sticky")
	}
}

func TestLengthGuards(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U64(1 << 40) // absurd length prefix
	_ = w.Sum()
	r := NewReader(bytes.NewReader(buf.Bytes()))
	if got := r.Len(100); got != 0 || r.Err() == nil {
		t.Fatal("oversized length accepted")
	}

	// Oversized string length.
	buf.Reset()
	w = NewWriter(&buf)
	w.U32(MaxStringLen + 1)
	_ = w.Sum()
	r = NewReader(bytes.NewReader(buf.Bytes()))
	if got := r.String(); got != "" || r.Err() == nil {
		t.Fatal("oversized string accepted")
	}

	// Writing an oversized string fails.
	w = NewWriter(&bytes.Buffer{})
	w.String(strings.Repeat("x", MaxStringLen+1))
	if w.Err() == nil {
		t.Fatal("oversized string write accepted")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(a uint32, b uint64, s string, xs []uint32, fs []float64) bool {
		if len(s) > MaxStringLen {
			s = s[:MaxStringLen]
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		w.U32(a)
		w.U64(b)
		w.String(s)
		w.U32s(xs)
		w.F64s(fs)
		if err := w.Sum(); err != nil {
			return false
		}
		r := NewReader(&buf)
		if r.U32() != a || r.U64() != b || r.String() != s {
			return false
		}
		gx := r.U32s(len(xs) + 1)
		if len(gx) != len(xs) {
			return false
		}
		for i := range xs {
			if gx[i] != xs[i] {
				return false
			}
		}
		gf := r.F64s(len(fs) + 1)
		if len(gf) != len(fs) {
			return false
		}
		for i := range fs {
			if gf[i] != fs[i] && !(fs[i] != fs[i] && gf[i] != gf[i]) { // NaN-safe
				return false
			}
		}
		return r.CheckSum() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
