package engine

import (
	"strings"
	"testing"

	"hybridolap/internal/query"
	"hybridolap/internal/sched"
	"hybridolap/internal/table"
)

func TestExplainCubeAnswerable(t *testing.T) {
	s := testSystem(t, nil)
	q := &query.Query{
		Conditions: []query.Condition{{Dim: 0, Level: 0, From: 0, To: 3}},
		Measure:    0, Op: table.AggSum,
	}
	ex, err := s.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Estimates.CPUOK || ex.Reason != "cube-answerable" {
		t.Fatalf("explanation = %+v", ex)
	}
	if ex.SubCubeBytes == 0 {
		t.Fatal("SubCubeBytes missing")
	}
	if ex.Decision.Queue.Kind != sched.QueueCPU {
		t.Fatalf("decision = %v, want cpu", ex.Decision.Queue)
	}
	if !strings.Contains(ex.String(), "decision: cpu") {
		t.Fatalf("String() = %q", ex.String())
	}
}

func TestExplainDoesNotCommitState(t *testing.T) {
	s := testSystem(t, nil)
	q := &query.Query{
		Conditions: []query.Condition{{Dim: 0, Level: 3, From: 0, To: 500}},
		Measure:    0, Op: table.AggSum,
	}
	before := s.Scheduler().Stats()
	var lastQueue string
	for i := 0; i < 10; i++ {
		ex, err := s.Explain(q)
		if err != nil {
			t.Fatal(err)
		}
		// Repeated explains return the same placement: no clocks moved.
		if i > 0 && ex.Decision.Queue.String() != lastQueue {
			t.Fatalf("Explain drifted: %s then %s", lastQueue, ex.Decision.Queue)
		}
		lastQueue = ex.Decision.Queue.String()
	}
	after := s.Scheduler().Stats()
	if after.Submitted != before.Submitted {
		t.Fatal("Explain committed a submission")
	}
	if got := s.Scheduler().QueueClock(sched.QueueRef{Kind: sched.QueueGPU, Index: 0}); got != 0 {
		t.Fatalf("queue clock moved to %v", got)
	}
}

func TestExplainReasons(t *testing.T) {
	s := testSystem(t, nil)
	cases := []struct {
		q      *query.Query
		reason string
	}{
		{
			&query.Query{TextConds: []query.TextCondition{{Column: "store_name", From: "a", To: "a"}},
				Measure: 0, Op: table.AggSum},
			"force the GPU path",
		},
		{
			&query.Query{Conditions: []query.Condition{{Dim: 0, Level: 3, From: 0, To: 10}},
				Measure: 0, Op: table.AggSum},
			"no pre-calculated cube at level >= 3",
		},
		{
			&query.Query{Conditions: []query.Condition{{Dim: 0, Level: 0, From: 0, To: 1}},
				Measure: 1, Op: table.AggSum},
			"cubes aggregate measure 0, query needs 1",
		},
	}
	for i, c := range cases {
		ex, err := s.Explain(c.q)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(ex.Reason, c.reason) {
			t.Fatalf("case %d: reason %q does not contain %q", i, ex.Reason, c.reason)
		}
		if ex.Estimates.CPUOK {
			t.Fatalf("case %d: unexpectedly CPU-answerable", i)
		}
	}
}

func TestExplainValidates(t *testing.T) {
	s := testSystem(t, nil)
	if _, err := s.Explain(&query.Query{Conditions: []query.Condition{{Dim: 9}}}); err == nil {
		t.Fatal("invalid query accepted")
	}
}

func TestModelPercentiles(t *testing.T) {
	s := testSystem(t, func(sp *SetupSpec) { sp.VirtualLevels = []int{2, 3} })
	g := testGen(t, s, 19, 0.2)
	res, err := s.RunModel(g.Batch(200), ModelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !(res.P50LatencySeconds <= res.P95LatencySeconds && res.P95LatencySeconds <= res.P99LatencySeconds) {
		t.Fatalf("percentiles not monotone: %v %v %v",
			res.P50LatencySeconds, res.P95LatencySeconds, res.P99LatencySeconds)
	}
	if res.P99LatencySeconds <= 0 {
		t.Fatal("p99 should be positive for a saturated batch")
	}
}
