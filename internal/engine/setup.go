package engine

import (
	"fmt"
	"time"

	"hybridolap/internal/cube"
	"hybridolap/internal/fault"
	"hybridolap/internal/gpusim"
	"hybridolap/internal/ingest"
	"hybridolap/internal/perfmodel"
	"hybridolap/internal/sched"
	"hybridolap/internal/table"
)

// SetupSpec builds a complete paper-configuration system in one call.
type SetupSpec struct {
	// Rows sizes the laptop-scale fact table (default 50 000).
	Rows int
	// Seed drives table generation.
	Seed int64
	// CubeLevels are materialised (default {0, 1}); real cells, answerable.
	CubeLevels []int
	// VirtualLevels are registered for estimation only (use with RunModel;
	// never with RunReal, which must answer on real cells).
	VirtualLevels []int
	// CPUThreads selects the CPU performance model: 1, 4 or 8 (default 8).
	CPUThreads int
	// DeadlineSeconds is T_C (default 1.0).
	DeadlineSeconds float64
	// Policy, Placement, Translation and DisableFeedback configure the
	// scheduler (defaults: the paper algorithm).
	Policy          sched.Policy
	Placement       sched.Placement
	Translation     sched.TranslationMode
	DisableFeedback bool
	// QuarantineThreshold and ReprobeSeconds configure the scheduler's
	// partition-health layer (defaults: 3 consecutive failures, 5 s).
	QuarantineThreshold int
	ReprobeSeconds      float64
	// Layout overrides the GPU partition layout (default PaperLayout).
	Layout []int
	// Estimator overrides the performance models (default paper models).
	Estimator *perfmodel.Estimator
	// VirtualDictLens overrides dictionary lengths for translation-time
	// estimation (paper-scale dictionaries over a laptop-scale table).
	VirtualDictLens map[string]int
	// Live wraps the generated table in a streaming ingest store: queries
	// pin epoch snapshots, Ingest accepts row batches and the cube set is
	// maintained incrementally. Implied by LiveWALPath.
	Live bool
	// LiveWALPath persists ingested batches to a crash-recoverable append
	// log at this path (implies Live); on startup every intact logged
	// batch is replayed.
	LiveWALPath string
	// Faults installs a seeded chaos plan across the whole stack: GPU
	// kernel launches, dictionary translation, the live store's WAL and
	// compaction all consult it. Nil runs fault-free.
	Faults *fault.Plan
	// MaxRetries bounds re-booking of failed GPU attempts (default 2;
	// negative disables retries).
	MaxRetries int
	// Fusion enables the Serve fusion window; FusionWindow and
	// FusionMaxFanIn tune it (defaults 1ms, 64). FusionEpsilonSeconds is
	// the scheduler's per-member shared-scan overhead ε.
	Fusion               bool
	FusionWindow         time.Duration
	FusionMaxFanIn       int
	FusionEpsilonSeconds float64
	// Cache enables the epoch-keyed result cache consulted by Serve;
	// CacheMaxEntries bounds it (default engine.DefaultCacheMaxEntries).
	Cache           bool
	CacheMaxEntries int
}

// Setup generates the fact table on the paper schema, loads it into a
// simulated Tesla C2070, pre-calculates the requested cubes, registers the
// virtual levels and wires the system.
func Setup(spec SetupSpec) (*System, error) {
	if spec.Rows == 0 {
		spec.Rows = 50_000
	}
	if spec.CubeLevels == nil {
		spec.CubeLevels = []int{0, 1}
	}
	if spec.CPUThreads == 0 {
		spec.CPUThreads = 8
	}
	if spec.DeadlineSeconds == 0 {
		spec.DeadlineSeconds = 1.0
	}
	if spec.Layout == nil {
		spec.Layout = gpusim.PaperLayout()
	}

	ft, err := table.Generate(table.GenSpec{
		Schema: table.PaperSchema(),
		Rows:   spec.Rows,
		Seed:   spec.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("engine: generating fact table: %w", err)
	}

	dev, err := gpusim.NewDevice(gpusim.TeslaC2070())
	if err != nil {
		return nil, err
	}
	if err := dev.LoadTable(ft); err != nil {
		return nil, err
	}
	if err := dev.Partition(spec.Layout); err != nil {
		return nil, err
	}

	cs, err := cube.BuildSet(ft, spec.CubeLevels, 0, cube.Config{})
	if err != nil {
		return nil, fmt.Errorf("engine: building cube set: %w", err)
	}
	for _, l := range spec.VirtualLevels {
		if err := cs.AddVirtual(l); err != nil {
			return nil, err
		}
	}

	var store *ingest.Store
	if spec.Live || spec.LiveWALPath != "" {
		store, err = ingest.Open(ingest.Config{
			Base:    ft,
			Cubes:   cs,
			WALPath: spec.LiveWALPath,
			Faults:  spec.Faults,
		})
		if err != nil {
			return nil, fmt.Errorf("engine: opening ingest store: %w", err)
		}
	}

	sys, err := New(Config{
		Table:           ft,
		Cubes:           cs,
		Device:          dev,
		Estimator:       spec.Estimator,
		CPUThreads:      spec.CPUThreads,
		VirtualDictLens: spec.VirtualDictLens,
		Live:            store,
		Faults:          spec.Faults,
		MaxRetries:      spec.MaxRetries,
		FusionEnabled:   spec.Fusion,
		FusionWindow:    spec.FusionWindow,
		FusionMaxFanIn:  spec.FusionMaxFanIn,
		CacheEnabled:    spec.Cache,
		CacheMaxEntries: spec.CacheMaxEntries,
		Sched: sched.Config{
			DeadlineSeconds:      spec.DeadlineSeconds,
			Policy:               spec.Policy,
			Placement:            spec.Placement,
			Translation:          spec.Translation,
			DisableFeedback:      spec.DisableFeedback,
			QuarantineThreshold:  spec.QuarantineThreshold,
			ReprobeSeconds:       spec.ReprobeSeconds,
			FusionEpsilonSeconds: spec.FusionEpsilonSeconds,
		},
	})
	if err != nil {
		if store != nil {
			_ = store.Close()
		}
		return nil, err
	}
	if store != nil {
		// Compaction books its cost on the scheduler's CPU queue.
		store.SetPacer(sys.CompactionPacer())
	}
	return sys, nil
}
