// Package engine assembles the hybrid OLAP system: the columnar fact table
// and its dictionaries on the (simulated) GPU, the multi-resolution cube
// set in CPU memory, the performance estimator and the Fig. 10 scheduler.
//
// Two execution modes share the same scheduler and estimation path:
//
//   - RunModel drives a discrete-event simulation on virtual time, using
//     the calibrated performance functions as service times. This is the
//     paper's own evaluation method (Sec. IV: "we have developed a system
//     model ... based on characteristics extracted from performance
//     measurements") and is what reproduces the throughput tables.
//
//   - RunReal executes every query for real: goroutine worker partitions
//     aggregate actual cubes, translate actual dictionaries and scan the
//     actual fact table, at laptop scale on the wall clock. It exists to
//     prove functional correctness end to end: both paths return identical
//     answers.
package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hybridolap/internal/cube"
	"hybridolap/internal/fault"
	"hybridolap/internal/gpusim"
	"hybridolap/internal/ingest"
	"hybridolap/internal/perfmodel"
	"hybridolap/internal/query"
	"hybridolap/internal/sched"
	"hybridolap/internal/table"
)

// Config assembles a System.
type Config struct {
	// Table is the fact table resident in (simulated) GPU memory.
	Table *table.FactTable
	// Cubes is the CPU-side multi-resolution cube set. May be nil for a
	// GPU-only system.
	Cubes *cube.Set
	// Device is the simulated GPU; it must already have the table loaded
	// and a partition layout installed.
	Device *gpusim.Device
	// Estimator supplies the CPU/GPU/dictionary models. Defaults to the
	// paper's published models.
	Estimator *perfmodel.Estimator
	// CPUThreads selects the CPU model (1, 4 or 8 with the paper
	// estimator) and the real-mode aggregation parallelism.
	CPUThreads int
	// Sched configures the scheduling policy; GPUWidths is filled in from
	// the device layout.
	Sched sched.Config
	// VirtualDictLens overrides per-column dictionary lengths D_L used in
	// translation-time estimation — the dictionary analogue of virtual
	// cube levels, letting the system model carry paper-scale dictionaries
	// (hundreds of thousands of entries) over a laptop-scale table. Only
	// estimation consults it; RunReal translates against the real
	// dictionaries. Columns not present fall back to the real length.
	VirtualDictLens map[string]int
	// Live attaches a streaming ingest store: queries pin an epoch
	// snapshot at bind time and answer over base + delta stripes, text
	// translates against the store's growing append dictionaries, and the
	// CPU path aggregates the pinned epoch's incrementally maintained cube
	// set. Table must be the store's base-stripe table (the epoch-0 base).
	Live *ingest.Store
	// Faults installs a chaos plan: the device consults it at every kernel
	// launch (fault.GPUExec) and the translation path at every dictionary
	// lookup batch (fault.DictLookup). Nil runs fault-free.
	Faults *fault.Plan
	// MaxRetries bounds how many times a failed GPU attempt is re-booked
	// through the scheduler before the query is reported failed (default 2;
	// negative disables retries).
	MaxRetries int
	// FusionEnabled turns on the Serve fusion window: compatible GPU-bound
	// queries arriving within FusionWindow are booked and executed as one
	// fused job of up to FusionMaxFanIn members.
	FusionEnabled bool
	// FusionWindow is how long the first arrival holds the window open for
	// compatible peers (default 1ms wall clock).
	FusionWindow time.Duration
	// FusionMaxFanIn closes the window early once this many members joined
	// (default 64).
	FusionMaxFanIn int
	// CacheEnabled turns on the epoch-keyed result cache consulted and
	// populated by Serve.
	CacheEnabled bool
	// CacheMaxEntries bounds the cache (default DefaultCacheMaxEntries).
	CacheMaxEntries int
}

// System is a runnable hybrid OLAP engine.
type System struct {
	cfg       Config
	scheduler *sched.Scheduler
	widths    []int
	totalCols int

	// schedMu serialises all scheduler mutation (Submit, Feedback,
	// SubmitMaintenance) and consistent reads (Peek, Stats): RunReal
	// workers, RunGrouped, Explain and the compaction pacer all share the
	// one scheduler.
	schedMu sync.Mutex

	// start anchors Serve's virtual clock: every Serve submission shares
	// one monotone origin, so fused bookings from concurrent handlers
	// compare consistently against the queue clocks.
	start time.Time

	// cache is the epoch-keyed result cache (nil when disabled).
	cache *resultCache

	// fusionMu guards the open fusion windows (one per compatibility key).
	fusionMu     sync.Mutex
	fusionGroups map[string]*fusionGroup

	// fusionFallbacks counts members of failed fused jobs (booking or
	// execution) that were sent back through the individual retry path —
	// the fused path's fault-tolerance cost, one count per member.
	fusionFallbacks atomic.Int64
}

// FusionFallbacks reports how many fused-job members have fallen back to
// individual execution after a failed booking or shared scan.
func (s *System) FusionFallbacks() int64 { return s.fusionFallbacks.Load() }

// New validates the wiring and builds the scheduler.
func New(cfg Config) (*System, error) {
	if cfg.Table == nil {
		return nil, fmt.Errorf("engine: config needs a fact table")
	}
	if cfg.Device == nil {
		return nil, fmt.Errorf("engine: config needs a device")
	}
	if cfg.Device.Table() != cfg.Table {
		return nil, fmt.Errorf("engine: device has a different table loaded")
	}
	parts := cfg.Device.Partitions()
	if len(parts) == 0 {
		return nil, fmt.Errorf("engine: device has no partition layout")
	}
	if cfg.Estimator == nil {
		cfg.Estimator = perfmodel.PaperEstimator()
	}
	if cfg.CPUThreads == 0 {
		cfg.CPUThreads = 8
	}
	if _, ok := cfg.Estimator.CPU[cfg.CPUThreads]; !ok && cfg.Cubes != nil {
		return nil, fmt.Errorf("engine: estimator has no CPU model for %d threads", cfg.CPUThreads)
	}
	widths := make([]int, len(parts))
	for i, p := range parts {
		widths[i] = p.SMs()
	}
	if cfg.Live != nil {
		ls := cfg.Live.Schema()
		ts := cfg.Table.Schema()
		if len(ls.Dimensions) != len(ts.Dimensions) || len(ls.Measures) != len(ts.Measures) ||
			len(ls.Texts) != len(ts.Texts) {
			return nil, fmt.Errorf("engine: live store schema does not match the device table")
		}
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 2
	}
	if cfg.Faults != nil {
		cfg.Device.SetFaults(cfg.Faults)
	}
	if cfg.FusionWindow <= 0 {
		cfg.FusionWindow = time.Millisecond
	}
	if cfg.FusionMaxFanIn <= 0 {
		cfg.FusionMaxFanIn = 64
	}
	cfg.Sched.GPUWidths = widths
	s, err := sched.New(cfg.Sched)
	if err != nil {
		return nil, err
	}
	sys := &System{
		cfg:          cfg,
		scheduler:    s,
		widths:       widths,
		totalCols:    cfg.Table.Schema().TotalColumns(),
		start:        time.Now(),
		fusionGroups: make(map[string]*fusionGroup),
	}
	if cfg.CacheEnabled {
		sys.cache = newResultCache(cfg.CacheMaxEntries)
	}
	return sys, nil
}

// Scheduler exposes the scheduler (telemetry, tests).
func (s *System) Scheduler() *sched.Scheduler { return s.scheduler }

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// Estimate runs step 2 of Fig. 10 for one query: T_CPU from the sub-cube
// model (eqs. 3+7/10), T_GPU per partition from P_GPU (eq. 14), T_TRANS
// from P_DICT (eqs. 16–18).
func (s *System) Estimate(q *query.Query) (sched.Estimates, error) {
	var est sched.Estimates

	est.NeedsTranslation = q.NeedsTranslation()
	if est.NeedsTranslation {
		var lens []int
		for i := range q.TextConds {
			tc := &q.TextConds[i]
			if tc.Translated {
				continue
			}
			n, ok := s.cfg.VirtualDictLens[tc.Column]
			if !ok {
				// Live systems price translation against the growing
				// append dictionaries.
				n = s.dicts().DictLen(tc.Column)
			}
			for k := 0; k < tc.Lookups(); k++ {
				lens = append(lens, n)
			}
		}
		est.TransSeconds = s.cfg.Estimator.TransTime(lens)
	}

	if s.cfg.Cubes != nil && s.cpuCanAnswer(q) {
		if bytes, ok := q.SubCubeBytes(s.cfg.Cubes); ok {
			mb := float64(bytes) / (1 << 20)
			t, err := s.cfg.Estimator.CPUTime(s.cfg.CPUThreads, mb)
			if err != nil {
				return sched.Estimates{}, err
			}
			est.CPUOK = true
			est.CPUSeconds = t
		}
	}

	cols := q.ColumnsAccessed()
	est.GPUSeconds = make([]float64, len(s.widths))
	for i, w := range s.widths {
		t, err := s.cfg.Device.EstimateSeconds(w, cols, s.totalCols)
		if err != nil {
			return sched.Estimates{}, err
		}
		est.GPUSeconds[i] = t
	}
	return est, nil
}

// aggValue extracts the requested aggregate from a cube Agg.
func aggValue(op table.AggOp, a cube.Agg) (float64, int64) {
	switch op {
	case table.AggSum:
		return a.Sum, a.Count
	case table.AggCount:
		return float64(a.Count), a.Count
	case table.AggMin:
		return a.Min, a.Count
	case table.AggMax:
		return a.Max, a.Count
	case table.AggAvg:
		return a.Avg(), a.Count
	default:
		return 0, a.Count
	}
}

// cpuCanAnswer reports whether the cube set can answer the query at all:
// no text predicates (cubes aggregate over hierarchies only) and the
// query's measure is the one the cubes aggregate (count queries read no
// measure, so any cube set works).
func (s *System) cpuCanAnswer(q *query.Query) bool {
	return s.cpuCanAnswerWith(q, s.cfg.Cubes)
}

// AnswerOnCPU answers a query from the cube set (the CPU partition's
// work) at the current epoch, using the configured aggregation
// parallelism.
func (s *System) AnswerOnCPU(q *query.Query) (table.ScanResult, error) {
	return s.AnswerOnCPUAt(q, s.pin())
}

// AnswerOnGPU answers a (translated) query on a specific GPU partition at
// the current epoch.
func (s *System) AnswerOnGPU(q *query.Query, partition int) (table.ScanResult, error) {
	return s.AnswerOnGPUAt(q, partition, s.pin())
}

// Reference answers a query by a sequential full scan of the current
// epoch — the ground truth both partitions must agree with.
func (s *System) Reference(q *query.Query) (table.ScanResult, error) {
	return s.ReferenceAt(q, s.pin())
}
