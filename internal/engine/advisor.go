package engine

import (
	"fmt"
	"sort"

	"hybridolap/internal/cube"
	"hybridolap/internal/perfmodel"
	"hybridolap/internal/table"
)

// AdvisorSpec asks which cube levels to pre-calculate under a main-memory
// budget — the planning problem of the paper's Fig. 1: cubes below level M
// fit in memory; queries finer than the finest stored cube fall through to
// the GPU (level G is where that is no longer a loss).
type AdvisorSpec struct {
	Schema *table.Schema
	// BudgetBytes bounds total cube storage (level M).
	BudgetBytes int64
	// LevelWeights[r] is the workload fraction of queries whose resolution
	// is r. Must cover every level some query needs.
	LevelWeights []float64
	// Selectivity is the typical queried fraction of a cube's volume
	// (default 0.25).
	Selectivity float64
	// CPUThreads selects the CPU model (default 8).
	CPUThreads int
	// TypicalColumns / TotalColumns price the GPU alternative (defaults: 4
	// of the schema's total).
	TypicalColumns int
	// Estimator supplies the models (default paper models).
	Estimator *perfmodel.Estimator
}

// Advice is the advisor's answer.
type Advice struct {
	// Levels to pre-calculate, ascending.
	Levels []int
	// UsedBytes is their total uncompressed size.
	UsedBytes int64
	// ExpectedSeconds is the expected per-query time over the workload mix
	// under this choice (CPU for covered resolutions, GPU otherwise).
	ExpectedSeconds float64
	// CPUFraction is the workload share answered from cubes.
	CPUFraction float64
}

// Advise enumerates level subsets (the lattice is tiny: one cube per
// scalar resolution) and returns the feasible subset minimising expected
// per-query time, breaking ties toward less memory.
func Advise(spec AdvisorSpec) (Advice, error) {
	if spec.Schema == nil {
		return Advice{}, fmt.Errorf("engine: advisor needs a schema")
	}
	if len(spec.LevelWeights) == 0 {
		return Advice{}, fmt.Errorf("engine: advisor needs level weights")
	}
	if spec.Selectivity <= 0 {
		spec.Selectivity = 0.25
	}
	if spec.CPUThreads == 0 {
		spec.CPUThreads = 8
	}
	if spec.Estimator == nil {
		spec.Estimator = perfmodel.PaperEstimator()
	}
	if spec.TypicalColumns <= 0 {
		spec.TypicalColumns = 4
	}
	totalCols := spec.Schema.TotalColumns()
	nLevels := len(spec.LevelWeights)

	// Cube sizes per level.
	sizes := make([]int64, nLevels)
	helper := cube.NewSet(spec.Schema)
	for l := 0; l < nLevels; l++ {
		sizes[l] = helper.LogicalBytesAt(l)
	}

	// GPU alternative cost: the fastest partition's estimate for a typical
	// query (the scheduler would spread load, but for planning the fastest
	// width is the right bound).
	gpuCost := 0.0
	bestW := 0
	for w := range spec.Estimator.GPU {
		if w > bestW {
			bestW = w
		}
	}
	if bestW > 0 {
		c, err := spec.Estimator.GPUTime(bestW, spec.TypicalColumns, totalCols)
		if err != nil {
			return Advice{}, err
		}
		gpuCost = c
	}

	// cpuCost[l] prices a typical query answered from the level-l cube.
	cpuCost := make([]float64, nLevels)
	for l := 0; l < nLevels; l++ {
		mb := spec.Selectivity * float64(sizes[l]) / (1 << 20)
		c, err := spec.Estimator.CPUTime(spec.CPUThreads, mb)
		if err != nil {
			return Advice{}, err
		}
		cpuCost[l] = c
	}

	best := Advice{ExpectedSeconds: -1}
	for mask := 0; mask < 1<<nLevels; mask++ {
		var used int64
		for l := 0; l < nLevels; l++ {
			if mask&(1<<l) != 0 {
				used += sizes[l]
			}
		}
		if spec.BudgetBytes > 0 && used > spec.BudgetBytes {
			continue
		}
		// Expected per-query cost: each resolution r is served by the
		// coarsest selected level >= r (cheapest adequate cube), else GPU.
		expected := 0.0
		cpuFrac := 0.0
		for r, wgt := range spec.LevelWeights {
			if wgt <= 0 {
				continue
			}
			served := -1
			for l := r; l < nLevels; l++ {
				if mask&(1<<l) != 0 {
					served = l
					break
				}
			}
			if served >= 0 && cpuCost[served] <= gpuCost {
				expected += wgt * cpuCost[served]
				cpuFrac += wgt
			} else if served >= 0 {
				// A cube exists but the GPU is faster; the scheduler would
				// route there (Fig. 1 level G crossover).
				expected += wgt * gpuCost
			} else {
				expected += wgt * gpuCost
			}
		}
		better := best.ExpectedSeconds < 0 ||
			expected < best.ExpectedSeconds-1e-15 ||
			(expected <= best.ExpectedSeconds+1e-15 && used < best.UsedBytes)
		if better {
			var levels []int
			for l := 0; l < nLevels; l++ {
				if mask&(1<<l) != 0 {
					levels = append(levels, l)
				}
			}
			sort.Ints(levels)
			best = Advice{
				Levels:          levels,
				UsedBytes:       used,
				ExpectedSeconds: expected,
				CPUFraction:     cpuFrac,
			}
		}
	}
	if best.ExpectedSeconds < 0 {
		return Advice{}, fmt.Errorf("engine: no feasible level subset under budget %d", spec.BudgetBytes)
	}
	return best, nil
}
