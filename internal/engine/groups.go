package engine

import (
	"fmt"

	"hybridolap/internal/fault"
	"hybridolap/internal/query"
	"hybridolap/internal/sched"
	"hybridolap/internal/table"
)

// AnswerGroupsOnCPU answers a grouped query from the cube set at the
// current epoch. The picked cube must be at least as fine as every
// condition and grouping level; the aggregates per group are exact (cube
// cells compose).
func (s *System) AnswerGroupsOnCPU(q *query.Query) ([]table.GroupRow, error) {
	return s.answerGroupsOnCPUAt(q, s.pin())
}

// answerGroupsOnCPUAt answers a grouped query from the cube set riding
// the given epoch snapshot (nil means the static configuration).
func (s *System) answerGroupsOnCPUAt(q *query.Query, snap *table.Snapshot) ([]table.GroupRow, error) {
	cs := s.cubesAt(snap)
	if cs == nil {
		return nil, fmt.Errorf("engine: no cube set configured")
	}
	if !q.Grouped() {
		return nil, fmt.Errorf("engine: query %d has no GROUP BY", q.ID)
	}
	if !s.cpuCanAnswerWith(q, cs) {
		return nil, fmt.Errorf("engine: grouped query %d cannot be answered from the cube set", q.ID)
	}
	r := q.Resolution()
	box, empty, err := q.Box(cs.Schema(), r)
	if err != nil {
		return nil, err
	}
	if empty {
		return nil, nil
	}
	groups, err := q.CubeGroupLevels()
	if err != nil {
		return nil, err
	}
	m, err := cs.AggregateGroups(box, r, groups, s.cfg.CPUThreads)
	if err != nil {
		return nil, err
	}
	// Convert cube aggregates to finalised group rows.
	acc := make(table.Groups, len(m))
	for k, agg := range m {
		v, _ := aggValue(q.Op, agg)
		switch q.Op {
		case table.AggAvg:
			// Finalize divides; hand it the raw sum.
			acc[k] = table.ScanResult{Value: agg.Sum, Rows: agg.Count}
		case table.AggCount:
			acc[k] = table.ScanResult{Rows: agg.Count}
		default:
			acc[k] = table.ScanResult{Value: v, Rows: agg.Count}
		}
	}
	return table.FinalizeGroups(q.Op, acc, len(q.GroupBy)), nil
}

// AnswerGroupsOnGPU answers a (translated) grouped query on one GPU
// partition at the current epoch.
func (s *System) AnswerGroupsOnGPU(q *query.Query, partition int) ([]table.GroupRow, error) {
	return s.AnswerGroupsOnGPUAt(q, partition, s.pin())
}

// ReferenceGroups answers a grouped query by a sequential scan — the
// ground truth both paths must match.
func (s *System) ReferenceGroups(q *query.Query) ([]table.GroupRow, error) {
	return s.ReferenceGroupsAt(q, s.pin())
}

// RunGrouped schedules one grouped query with the Fig. 10 algorithm (its
// estimates already include the grouping columns in C_QD) and executes it
// synchronously on the chosen partition. Grouped queries are interactive
// drill-downs, so the synchronous path matches how they are used: a
// failed GPU attempt reports partition health and is re-booked inline
// (same absolute deadline) until the retry budget runs out.
func (s *System) RunGrouped(q *query.Query) ([]table.GroupRow, string, error) {
	qq := q.Clone()
	est, err := s.Estimate(qq)
	if err != nil {
		return nil, "", err
	}
	s.schedMu.Lock()
	d, err := s.scheduler.Submit(0, est)
	s.schedMu.Unlock()
	if err != nil {
		return nil, "", err
	}
	snap := s.pin() // bind-time epoch: stable across translation + scan
	for attempt := 0; ; attempt++ {
		if qq.NeedsTranslation() {
			// Translation rides the chaos layer like every other
			// dictionary path: an injected miss storm (fault.DictLookup)
			// fails this attempt and goes through the retry budget with
			// the same absolute deadline — not through partition health,
			// which the dictionary cannot implicate.
			err := s.cfg.Faults.Check(fault.DictLookup, -1)
			if err == nil {
				_, err = query.Translate(qq, s.dicts())
			}
			if err != nil {
				if attempt+1 >= 1+s.retries() {
					return nil, "", err
				}
				est.NeedsTranslation = qq.NeedsTranslation()
				s.schedMu.Lock()
				d, err = s.scheduler.Resubmit(0, d.Deadline, est)
				s.schedMu.Unlock()
				if err != nil {
					return nil, "", err
				}
				continue
			}
		}
		if d.Queue.Kind == sched.QueueCPU {
			rows, err := s.answerGroupsOnCPUAt(qq, snap)
			return rows, "cpu", err
		}
		rows, err := s.AnswerGroupsOnGPUAt(qq, d.Queue.Index, snap)
		if err == nil {
			s.schedMu.Lock()
			s.scheduler.ReportSuccess(d.Queue)
			s.schedMu.Unlock()
			return rows, d.Queue.String(), nil
		}
		s.schedMu.Lock()
		s.scheduler.ReportFailure(d.Queue, 0)
		s.schedMu.Unlock()
		if attempt+1 >= 1+s.retries() {
			return nil, d.Queue.String(), err
		}
		est.NeedsTranslation = qq.NeedsTranslation()
		if !est.NeedsTranslation {
			est.TransSeconds = 0
		}
		s.schedMu.Lock()
		d, err = s.scheduler.Resubmit(0, d.Deadline, est)
		s.schedMu.Unlock()
		if err != nil {
			return nil, "", err
		}
	}
}
