package engine

import (
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"

	"hybridolap/internal/query"
	"hybridolap/internal/sched"
	"hybridolap/internal/table"
)

func testSystem(t testing.TB, mutate func(*SetupSpec)) *System {
	t.Helper()
	spec := SetupSpec{Rows: 5000, Seed: 1}
	if mutate != nil {
		mutate(&spec)
	}
	s, err := Setup(spec)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testGen(t testing.TB, s *System, seed int64, textProb float64) *query.Generator {
	t.Helper()
	g, err := query.NewGenerator(query.GenConfig{
		Schema:       s.Config().Table.Schema(),
		Seed:         seed,
		TextProb:     textProb,
		Dicts:        s.Config().Table.Dicts(),
		LevelWeights: []float64{0.4, 0.4, 0.15, 0.05},
		Ops:          []table.AggOp{table.AggSum, table.AggCount, table.AggAvg},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	s := testSystem(t, nil)
	cfg := s.Config()
	// Device/table mismatch.
	other, err := table.Generate(table.GenSpec{Schema: table.PaperSchema(), Rows: 10, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Table = other
	if _, err := New(bad); err == nil {
		t.Fatal("device/table mismatch accepted")
	}
	// Unknown CPU thread count.
	bad = cfg
	bad.CPUThreads = 3
	if _, err := New(bad); err == nil {
		t.Fatal("CPUThreads=3 accepted with paper estimator")
	}
}

func TestEstimateDimensionQuery(t *testing.T) {
	s := testSystem(t, nil)
	q := &query.Query{
		ID:         1,
		Conditions: []query.Condition{{Dim: 0, Level: 1, From: 0, To: 15}},
		Measure:    0, Op: table.AggSum,
	}
	est, err := s.Estimate(q)
	if err != nil {
		t.Fatal(err)
	}
	if !est.CPUOK {
		t.Fatal("level-1 query should be CPU-answerable (cube at level 1)")
	}
	if est.NeedsTranslation || est.TransSeconds != 0 {
		t.Fatal("dimension query should not need translation")
	}
	if len(est.GPUSeconds) != 6 {
		t.Fatalf("GPU estimates = %d, want 6", len(est.GPUSeconds))
	}
	// Slow partitions estimate slower.
	if !(est.GPUSeconds[0] > est.GPUSeconds[2] && est.GPUSeconds[2] > est.GPUSeconds[4]) {
		t.Fatalf("GPU estimate ordering wrong: %v", est.GPUSeconds)
	}
	// CPU estimate is the 8T model on the sub-cube size: 16 months x full
	// geo (16) x full product (32) cells at level 1 = 8192 cells = 256 KB.
	mb := 8192.0 * 32 / (1 << 20)
	want, _ := s.Config().Estimator.CPUTime(8, mb)
	if math.Abs(est.CPUSeconds-want) > 1e-12 {
		t.Fatalf("CPU estimate = %v, want %v", est.CPUSeconds, want)
	}
}

func TestEstimateTextQuery(t *testing.T) {
	s := testSystem(t, nil)
	q := &query.Query{
		ID:        2,
		TextConds: []query.TextCondition{{Column: "store_name", From: "a", To: "a"}},
		Measure:   0, Op: table.AggSum,
	}
	est, err := s.Estimate(q)
	if err != nil {
		t.Fatal(err)
	}
	if est.CPUOK {
		t.Fatal("text query must not be CPU-answerable")
	}
	if !est.NeedsTranslation || est.TransSeconds <= 0 {
		t.Fatalf("translation estimate = %+v", est)
	}
}

func TestEstimateTooFineQuery(t *testing.T) {
	s := testSystem(t, nil) // cubes at levels 0,1 only
	q := &query.Query{
		ID:         3,
		Conditions: []query.Condition{{Dim: 0, Level: 3, From: 0, To: 100}},
		Measure:    0, Op: table.AggSum,
	}
	est, err := s.Estimate(q)
	if err != nil {
		t.Fatal(err)
	}
	if est.CPUOK {
		t.Fatal("level-3 query must be GPU-bound without a fine cube")
	}
}

func TestVirtualLevelMakesCPUOK(t *testing.T) {
	s := testSystem(t, func(sp *SetupSpec) { sp.VirtualLevels = []int{2, 3} })
	q := &query.Query{
		ID:         4,
		Conditions: []query.Condition{{Dim: 0, Level: 3, From: 0, To: 100}},
		Measure:    0, Op: table.AggSum,
	}
	est, err := s.Estimate(q)
	if err != nil {
		t.Fatal(err)
	}
	if !est.CPUOK {
		t.Fatal("virtual level should enable CPU estimation")
	}
	if est.CPUSeconds <= 0 {
		t.Fatal("virtual level estimate should be positive")
	}
}

func TestCPUAndGPUAgreeOnEveryQuery(t *testing.T) {
	// The headline integration property: for any cube-answerable query,
	// the CPU cube partition, every GPU partition and the reference scan
	// return the same answer.
	s := testSystem(t, nil)
	g := testGen(t, s, 7, 0)
	checked := 0
	for i := 0; i < 60; i++ {
		q := g.Next()
		if q.Resolution() > 1 || !s.cpuCanAnswer(q) {
			continue // not cube-answerable in this setup
		}
		ref, err := s.Reference(q)
		if err != nil {
			t.Fatal(err)
		}
		cpu, err := s.AnswerOnCPU(q)
		if err != nil {
			t.Fatal(err)
		}
		if cpu.Rows != ref.Rows || math.Abs(cpu.Value-ref.Value) > 1e-6*math.Max(1, math.Abs(ref.Value)) {
			t.Fatalf("query %d: CPU (%v,%d) != ref (%v,%d)", q.ID, cpu.Value, cpu.Rows, ref.Value, ref.Rows)
		}
		gpu, err := s.AnswerOnGPU(q.Clone(), i%6)
		if err != nil {
			t.Fatal(err)
		}
		if gpu.Rows != ref.Rows || math.Abs(gpu.Value-ref.Value) > 1e-6*math.Max(1, math.Abs(ref.Value)) {
			t.Fatalf("query %d: GPU (%v,%d) != ref (%v,%d)", q.ID, gpu.Value, gpu.Rows, ref.Value, ref.Rows)
		}
		checked++
	}
	if checked < 10 {
		t.Fatalf("only %d queries checked; workload mix degenerate", checked)
	}
}

func TestGPUAnswersTextQueries(t *testing.T) {
	s := testSystem(t, nil)
	g := testGen(t, s, 8, 1.0)
	checked := 0
	for i := 0; i < 30; i++ {
		q := g.Next()
		if !q.GPUOnly() {
			continue
		}
		ref, err := s.Reference(q)
		if err != nil {
			t.Fatal(err)
		}
		qq := q.Clone()
		if _, err := query.Translate(qq, s.Config().Table.Dicts()); err != nil {
			t.Fatal(err)
		}
		gpu, err := s.AnswerOnGPU(qq, i%6)
		if err != nil {
			t.Fatal(err)
		}
		if gpu.Rows != ref.Rows || math.Abs(gpu.Value-ref.Value) > 1e-6*math.Max(1, math.Abs(ref.Value)) {
			t.Fatalf("query %d: GPU (%v,%d) != ref (%v,%d)", q.ID, gpu.Value, gpu.Rows, ref.Value, ref.Rows)
		}
		checked++
	}
	if checked < 5 {
		t.Fatalf("only %d text queries checked", checked)
	}
}

func TestAnswerErrors(t *testing.T) {
	s := testSystem(t, nil)
	textQ := &query.Query{TextConds: []query.TextCondition{{Column: "store_name", From: "a", To: "a"}}}
	if _, err := s.AnswerOnCPU(textQ); err == nil {
		t.Fatal("CPU answered a text query")
	}
	if _, err := s.AnswerOnGPU(&query.Query{Op: table.AggCount}, 99); err == nil {
		t.Fatal("out-of-range partition accepted")
	}
}

func TestRunModelBatchThroughput(t *testing.T) {
	s := testSystem(t, func(sp *SetupSpec) { sp.VirtualLevels = []int{2, 3} })
	g := testGen(t, s, 9, 0.3)
	qs := g.Batch(300)
	res, err := s.RunModel(qs, ModelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 300 {
		t.Fatalf("completed = %d", res.Completed)
	}
	if res.Throughput <= 0 || res.MakespanSeconds <= 0 {
		t.Fatalf("throughput = %v makespan = %v", res.Throughput, res.MakespanSeconds)
	}
	if res.MeanLatencySeconds <= 0 {
		t.Fatal("mean latency should be positive")
	}
	if len(res.Outcomes) != 300 {
		t.Fatalf("outcomes = %d", len(res.Outcomes))
	}
	// Both sides should be used under the paper policy with this mix.
	st := res.SchedStats
	var gpuTotal int64
	for _, n := range st.ToGPU {
		gpuTotal += n
	}
	if st.ToCPU == 0 || gpuTotal == 0 {
		t.Fatalf("degenerate placement: cpu=%d gpu=%d", st.ToCPU, gpuTotal)
	}
	if u := res.Utilisation["cpu"]; u < 0 || u > 1 {
		t.Fatalf("cpu utilisation = %v", u)
	}
}

func TestRunModelDeterministic(t *testing.T) {
	mk := func() *ModelResult {
		s := testSystem(t, func(sp *SetupSpec) { sp.VirtualLevels = []int{2, 3} })
		g := testGen(t, s, 10, 0.3)
		res, err := s.RunModel(g.Batch(100), ModelOptions{Noise: Noise{Amplitude: 0.2, Seed: 5}})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := mk(), mk()
	if a.Throughput != b.Throughput || a.MetDeadline != b.MetDeadline || a.MakespanSeconds != b.MakespanSeconds {
		t.Fatalf("model run not deterministic: %v vs %v", a.Throughput, b.Throughput)
	}
}

// TestRunModelInjectedRng checks the injected-source contract: a run with
// Rng set to a source seeded S is bit-identical to a run with Seed S and
// nil Rng, so callers can sequence or share sources without losing
// reproducibility.
func TestRunModelInjectedRng(t *testing.T) {
	run := func(opts ModelOptions) *ModelResult {
		s := testSystem(t, func(sp *SetupSpec) { sp.VirtualLevels = []int{2, 3} })
		g := testGen(t, s, 10, 0.3)
		res, err := s.RunModel(g.Batch(100), opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seeded := run(ModelOptions{
		Arrival: Arrival{RatePerSec: 50, Jitter: 0.2, Seed: 3},
		Noise:   Noise{Amplitude: 0.2, Seed: 5},
	})
	injected := run(ModelOptions{
		Arrival: Arrival{RatePerSec: 50, Jitter: 0.2, Rng: rand.New(rand.NewSource(3))},
		Noise:   Noise{Amplitude: 0.2, Rng: rand.New(rand.NewSource(5))},
	})
	if seeded.Throughput != injected.Throughput ||
		seeded.MakespanSeconds != injected.MakespanSeconds ||
		seeded.MetDeadline != injected.MetDeadline {
		t.Fatalf("injected rng diverged from seeded run: %+v vs %+v", seeded, injected)
	}
}

func TestRunModelOpenArrivals(t *testing.T) {
	s := testSystem(t, nil)
	g := testGen(t, s, 11, 0)
	res, err := s.RunModel(g.Batch(100), ModelOptions{
		Arrival: Arrival{RatePerSec: 50, Jitter: 0.2, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 100 {
		t.Fatalf("completed = %d", res.Completed)
	}
	// An underloaded open system should meet essentially all deadlines.
	if res.MetDeadline < 95 {
		t.Fatalf("met = %d / 100", res.MetDeadline)
	}
	// Makespan at least the arrival span.
	if res.MakespanSeconds < 99.0/50 {
		t.Fatalf("makespan = %v", res.MakespanSeconds)
	}
}

func TestRunModelHybridBeatsSingleResource(t *testing.T) {
	// The paper's headline: hybrid > GPU-only, and hybrid > CPU-only, on a
	// mixed workload.
	run := func(policy sched.Policy) float64 {
		s := testSystem(t, func(sp *SetupSpec) {
			sp.VirtualLevels = []int{2, 3}
			sp.Policy = policy
		})
		// A CPU-answerable mix (sum over measure 0, no text) so the
		// CPU-only baseline can run the identical stream.
		g, err := query.NewGenerator(query.GenConfig{
			Schema:        s.Config().Table.Schema(),
			Seed:          12,
			LevelWeights:  []float64{0.4, 0.4, 0.15, 0.05},
			MeasureChoice: []int{0},
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.RunModel(g.Batch(400), ModelOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Throughput
	}
	hybrid := run(sched.PolicyPaper)
	gpuOnly := run(sched.PolicyGPUOnly)
	cpuOnly := run(sched.PolicyCPUOnly)
	if hybrid <= gpuOnly {
		t.Fatalf("hybrid (%v q/s) should beat GPU-only (%v q/s)", hybrid, gpuOnly)
	}
	if hybrid <= cpuOnly {
		t.Fatalf("hybrid (%v q/s) should beat CPU-only (%v q/s)", hybrid, cpuOnly)
	}
}

func TestRunModelNoiseWithFeedbackStillCompletes(t *testing.T) {
	s := testSystem(t, nil)
	g := testGen(t, s, 13, 0.3)
	res, err := s.RunModel(g.Batch(200), ModelOptions{Noise: Noise{Amplitude: 0.3, Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 200 {
		t.Fatalf("completed = %d", res.Completed)
	}
}

func TestRunRealAnswersMatchReference(t *testing.T) {
	s := testSystem(t, func(sp *SetupSpec) { sp.Rows = 3000 })
	g := testGen(t, s, 14, 0.3)
	qs := g.Batch(60)
	res, err := s.RunReal(qs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("failed = %d", res.Failed)
	}
	if res.Completed != 60 {
		t.Fatalf("completed = %d", res.Completed)
	}
	for i, o := range res.Outcomes {
		ref, err := s.Reference(qs[i])
		if err != nil {
			t.Fatal(err)
		}
		if o.Result.Rows != ref.Rows || math.Abs(o.Result.Value-ref.Value) > 1e-6*math.Max(1, math.Abs(ref.Value)) {
			t.Fatalf("query %d via %v: got (%v,%d), want (%v,%d)",
				o.ID, o.Queue, o.Result.Value, o.Result.Rows, ref.Value, ref.Rows)
		}
	}
	if res.Throughput <= 0 {
		t.Fatal("real throughput should be positive")
	}
}

func TestRunRealDoesNotMutateInputQueries(t *testing.T) {
	s := testSystem(t, func(sp *SetupSpec) { sp.Rows = 1000 })
	g := testGen(t, s, 15, 1.0)
	qs := g.Batch(10)
	if _, err := s.RunReal(qs); err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		for _, tc := range q.TextConds {
			if tc.Translated {
				t.Fatal("RunReal mutated a caller query")
			}
		}
	}
}

func TestSetupValidation(t *testing.T) {
	if _, err := Setup(SetupSpec{Rows: 10, CubeLevels: []int{0}, VirtualLevels: []int{-1}}); err == nil {
		t.Fatal("negative virtual level accepted")
	}
	if _, err := Setup(SetupSpec{Rows: 10, Layout: []int{3}}); err == nil {
		t.Fatal("layout without model accepted")
	}
	if _, err := Setup(SetupSpec{Rows: 10, CPUThreads: 5}); err == nil {
		t.Fatal("unknown CPU thread count accepted")
	}
}

func TestRunRealWithInListQueries(t *testing.T) {
	s := testSystem(t, func(sp *SetupSpec) { sp.Rows = 2000 })
	g, err := query.NewGenerator(query.GenConfig{
		Schema:        s.Config().Table.Schema(),
		Seed:          23,
		TextProb:      0.8,
		TextInProb:    0.7,
		Dicts:         s.Config().Table.Dicts(),
		LevelWeights:  []float64{0.5, 0.5},
		MeasureChoice: []int{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	qs := g.Batch(30)
	sawIn := false
	for _, q := range qs {
		for _, tc := range q.TextConds {
			if len(tc.In) > 0 {
				sawIn = true
			}
		}
	}
	if !sawIn {
		t.Fatal("generator produced no IN lists")
	}
	res, err := s.RunReal(qs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("failed = %d", res.Failed)
	}
	for i, o := range res.Outcomes {
		ref, err := s.Reference(qs[i])
		if err != nil {
			t.Fatal(err)
		}
		if o.Result.Rows != ref.Rows || math.Abs(o.Result.Value-ref.Value) > 1e-6*math.Max(1, math.Abs(ref.Value)) {
			t.Fatalf("query %d: got (%v,%d) want (%v,%d)", o.ID, o.Result.Value, o.Result.Rows, ref.Value, ref.Rows)
		}
	}
}

func TestWriteTrace(t *testing.T) {
	s := testSystem(t, nil)
	g := testGen(t, s, 29, 0.2)
	res, err := s.RunModel(g.Batch(25), ModelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.WriteTrace(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 25 {
		t.Fatalf("trace lines = %d", len(lines))
	}
	var rec TraceRecord
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Queue == "" || rec.FinishedAt < rec.SubmittedAt {
		t.Fatalf("record = %+v", rec)
	}
}

func TestRunModelPoissonArrivals(t *testing.T) {
	s := testSystem(t, nil)
	g := testGen(t, s, 31, 0)
	res, err := s.RunModel(g.Batch(200), ModelOptions{
		Arrival: Arrival{RatePerSec: 100, Poisson: true, Seed: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 200 {
		t.Fatalf("completed = %d", res.Completed)
	}
	// Mean inter-arrival 10ms over 200 arrivals: makespan near 2s with
	// generous slack for exponential variance.
	if res.MakespanSeconds < 1.0 || res.MakespanSeconds > 4.0 {
		t.Fatalf("makespan = %v, want ~2s", res.MakespanSeconds)
	}
	// Deterministic across runs.
	s2 := testSystem(t, nil)
	g2 := testGen(t, s2, 31, 0)
	res2, err := s2.RunModel(g2.Batch(200), ModelOptions{
		Arrival: Arrival{RatePerSec: 100, Poisson: true, Seed: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.MakespanSeconds != res.MakespanSeconds {
		t.Fatal("poisson arrivals not deterministic for a fixed seed")
	}
}

func TestRunRealRecordsEstimationError(t *testing.T) {
	s := testSystem(t, func(sp *SetupSpec) { sp.Rows = 2000 })
	g := testGen(t, s, 41, 0)
	res, err := s.RunReal(g.Batch(20))
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range res.Outcomes {
		if o.Err != nil {
			t.Fatal(o.Err)
		}
		if o.EstServiceSeconds < 0 || o.ActServiceSeconds <= 0 {
			t.Fatalf("outcome %d: est=%v act=%v", o.ID, o.EstServiceSeconds, o.ActServiceSeconds)
		}
	}
	// The calibrated models are Xeon/Tesla times; host times differ — the
	// telemetry is what exposes that, and the feedback loop absorbs it.
	// All we assert is that both sides are populated and finite.
}
