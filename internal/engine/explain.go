package engine

import (
	"fmt"
	"strings"

	"hybridolap/internal/query"
	"hybridolap/internal/sched"
	"hybridolap/internal/table"
)

// Explanation is the scheduler's view of one query without executing it:
// the step-2 estimates and the placement Submit would make right now.
type Explanation struct {
	// Resolution is R (eq. 2), including grouping levels.
	Resolution int
	// SubCubeBytes is the eq. 3 footprint (0 when not CPU-answerable).
	SubCubeBytes int64
	// ColumnsAccessed is C_QD (eq. 12).
	ColumnsAccessed int
	// Estimates are the raw step-2 outputs.
	Estimates sched.Estimates
	// Decision is the hypothetical placement (queue clocks uncommitted).
	Decision sched.Decision
	// Reason summarises why the CPU path is or is not available.
	Reason string
}

// Explain prices and places a query hypothetically: nothing executes and
// no queue state changes.
func (s *System) Explain(q *query.Query) (*Explanation, error) {
	if err := q.Validate(s.cfg.Table.Schema()); err != nil {
		return nil, err
	}
	est, err := s.Estimate(q)
	if err != nil {
		return nil, err
	}
	s.schedMu.Lock()
	d, err := s.scheduler.Peek(0, est)
	s.schedMu.Unlock()
	if err != nil {
		return nil, err
	}
	ex := &Explanation{
		Resolution:      q.GroupResolution(),
		ColumnsAccessed: q.ColumnsAccessed(),
		Estimates:       est,
		Decision:        d,
	}
	switch {
	case q.GPUOnly():
		ex.Reason = "text predicates or text grouping force the GPU path"
	case s.cfg.Cubes == nil:
		ex.Reason = "no cube set configured"
	case !est.CPUOK:
		if q.Op != table.AggCount && q.Measure != s.cfg.Cubes.Measure() {
			ex.Reason = fmt.Sprintf("cubes aggregate measure %d, query needs %d", s.cfg.Cubes.Measure(), q.Measure)
		} else {
			ex.Reason = fmt.Sprintf("no pre-calculated cube at level >= %d", ex.Resolution)
		}
	default:
		if n, ok := q.SubCubeBytes(s.cfg.Cubes); ok {
			ex.SubCubeBytes = n
		}
		ex.Reason = "cube-answerable"
	}
	return ex, nil
}

// String renders the explanation for terminals.
func (ex *Explanation) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "resolution R=%d, columns C_QD=%d\n", ex.Resolution, ex.ColumnsAccessed)
	if ex.Estimates.CPUOK {
		fmt.Fprintf(&sb, "cpu:   T_CPU=%.3gs over %.2f MB sub-cube (%s)\n",
			ex.Estimates.CPUSeconds, float64(ex.SubCubeBytes)/(1<<20), ex.Reason)
	} else {
		fmt.Fprintf(&sb, "cpu:   unavailable (%s)\n", ex.Reason)
	}
	for i, g := range ex.Estimates.GPUSeconds {
		fmt.Fprintf(&sb, "gpu[%d]: T_GPU=%.3gs\n", i, g)
	}
	if ex.Estimates.NeedsTranslation {
		fmt.Fprintf(&sb, "trans: T_TRANS=%.3gs\n", ex.Estimates.TransSeconds)
	}
	fmt.Fprintf(&sb, "decision: %s (start %.3gs, done %.3gs, deadline %s)",
		ex.Decision.Queue, ex.Decision.Start, ex.Decision.End, meets(ex.Decision.MeetsDeadline))
	return sb.String()
}

func meets(b bool) string {
	if b {
		return "met"
	}
	return "missed"
}
