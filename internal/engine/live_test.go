package engine

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"hybridolap/internal/ingest"
	"hybridolap/internal/query"
	"hybridolap/internal/table"
)

func liveSystem(t testing.TB, rows int) *System {
	t.Helper()
	s, err := Setup(SetupSpec{Rows: rows, Seed: 1, Live: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := s.Live().Close(); err != nil {
			t.Errorf("closing live store: %v", err)
		}
	})
	return s
}

// liveRow builds a valid paper-schema row (3 dims, 2 measures, 2 texts)
// whose text values never collide with generated names.
func liveRow(i int) table.Row {
	return table.Row{
		Coords:   []int{i % 1024, i % 512, i % 2048},
		Measures: []float64{float64(i%100) + 0.5, float64(i % 7)},
		Texts: []string{
			fmt.Sprintf("live store #%d", i%5),
			fmt.Sprintf("live city %d", i%3),
		},
	}
}

func TestLiveIngestVisibleToRunReal(t *testing.T) {
	s := liveSystem(t, 2000)

	var want float64
	var wantRows int64
	rows := make([]table.Row, 10)
	for i := range rows {
		rows[i] = liveRow(i)
		if i%5 == 0 {
			want += rows[i].Measures[0]
			wantRows++
		}
	}
	snap, err := s.Ingest(&ingest.Batch{Rows: rows})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Epoch() == 0 {
		t.Fatal("epoch did not advance")
	}

	// The string is novel, so only the ingested rows can match; the text
	// predicate exercises append-dictionary translation inside RunReal.
	q, err := query.Parse("SELECT sum(sales) WHERE store_name = 'live store #0'",
		s.Config().Table.Schema())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunReal([]*query.Query{q})
	if err != nil {
		t.Fatal(err)
	}
	o := res.Outcomes[0]
	if o.Err != nil {
		t.Fatal(o.Err)
	}
	if o.Result.Rows != wantRows || math.Abs(o.Result.Value-want) > 1e-9 {
		t.Fatalf("got (%v, %d), want (%v, %d)", o.Result.Value, o.Result.Rows, want, wantRows)
	}

	// A grouped dimension query over the live snapshot matches the
	// from-scratch scan reference at the same (quiescent) epoch.
	gq := &query.Query{
		Conditions: []query.Condition{{Dim: 0, Level: 0, From: 0, To: 3}},
		GroupBy:    []query.GroupRef{{Dim: 0, Level: 0}},
		Measure:    0, Op: table.AggSum,
	}
	got, _, err := s.RunGrouped(gq)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := s.ReferenceGroups(gq)
	if err != nil {
		t.Fatal(err)
	}
	groupRowsEqual(t, got, ref, "live-grouped")
}

// TestLiveConcurrentIngestQueryCompact drives writers, scalar and grouped
// readers, and the background compactor against one live system; run with
// -race this is the engine-level concurrency check for the write path.
func TestLiveConcurrentIngestQueryCompact(t *testing.T) {
	const baseRows, writers, batches, perBatch = 2000, 2, 10, 20
	s := liveSystem(t, baseRows)
	store := s.Live()
	if store.StartCompactor(ingest.CompactorConfig{MinDeltas: 2, Interval: time.Millisecond}) == nil {
		t.Fatal("compactor did not start")
	}

	var wWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		wWG.Add(1)
		go func(w int) {
			defer wWG.Done()
			for b := 0; b < batches; b++ {
				rows := make([]table.Row, perBatch)
				for i := range rows {
					rows[i] = liveRow(w*10_000 + b*perBatch + i)
				}
				if _, err := s.Ingest(&ingest.Batch{Rows: rows}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}

	total := int64(baseRows + writers*batches*perBatch)
	stop := make(chan struct{})
	var rWG sync.WaitGroup
	for r := 0; r < 2; r++ {
		rWG.Add(1)
		go func() {
			defer rWG.Done()
			gq := &query.Query{
				GroupBy: []query.GroupRef{{Dim: 1, Level: 1}},
				Measure: 0, Op: table.AggCount,
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				q, err := query.Parse("SELECT count(*)", s.Config().Table.Schema())
				if err != nil {
					t.Error(err)
					return
				}
				res, err := s.RunReal([]*query.Query{q})
				if err != nil {
					t.Error(err)
					return
				}
				o := res.Outcomes[0]
				if o.Err != nil {
					t.Error(o.Err)
					return
				}
				// Each query pins one epoch: it sees at least the base
				// stripe and never rows beyond the final total.
				if o.Result.Rows < baseRows || o.Result.Rows > total {
					t.Errorf("count = %d outside [%d, %d]", o.Result.Rows, baseRows, total)
					return
				}
				if _, _, err := s.RunGrouped(gq.Clone()); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}

	wWG.Wait()
	close(stop)
	rWG.Wait()
	if t.Failed() {
		t.FailNow()
	}

	deadline := time.Now().Add(5 * time.Second)
	for store.Stats().Compactions == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if store.Stats().Compactions == 0 {
		t.Fatal("compactor never ran")
	}
	if st := s.Scheduler().Stats(); st.MaintenanceJobs == 0 {
		t.Fatal("compaction booked no maintenance jobs on the scheduler")
	}
	if n := int64(store.Current().Rows()); n != total {
		t.Fatalf("final rows = %d, want %d", n, total)
	}

	// Quiescent count(*) sees every acknowledged row exactly once.
	q, err := query.Parse("SELECT count(*)", s.Config().Table.Schema())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunReal([]*query.Query{q})
	if err != nil {
		t.Fatal(err)
	}
	if o := res.Outcomes[0]; o.Err != nil || o.Result.Rows != total {
		t.Fatalf("final count = (%d, %v), want %d", o.Result.Rows, o.Err, total)
	}
}
