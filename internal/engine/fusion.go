package engine

import (
	"fmt"
	"strconv"
	"time"

	"hybridolap/internal/fault"
	"hybridolap/internal/gpusim"
	"hybridolap/internal/query"
	"hybridolap/internal/sched"
	"hybridolap/internal/table"
)

// Serve is the high-QPS serving path: one scalar query in, one answer
// out, with the result cache consulted first and compatible concurrent
// GPU-bound queries fused into shared scans.
//
//	pin epoch → translate → cache lookup → estimate
//	  ├── CPU-answerable or fusion off → RunReal (cube walk / solo scan)
//	  └── GPU-bound → fusion window → ONE fused job for K members
//
// Soundness is preserved at every turn: fused members get bit-identical
// answers to solo execution on the same partition (the gpusim fused
// kernels pin this), cache hits replay stored execution bits or exact
// count/min/max folds, and a fused job failure sends every member through
// RunReal's deadline-aware retry path individually, so fusion never
// reduces fault tolerance.
type ServeOutcome struct {
	Result table.ScanResult
	// Queue is the placement that produced the answer (for cache hits,
	// the placement that produced the stored entry).
	Queue sched.QueueRef
	// Fused reports the answer came from a fused job of FanIn members.
	Fused bool
	FanIn int
	// CacheHit/Subsumed report a cache answer (exact / interval-subsumed).
	CacheHit bool
	Subsumed bool
	// Attempts counts real executions (0 for cache hits).
	Attempts int
	Latency  time.Duration
}

// fusionMember is one query waiting in a fusion window.
type fusionMember struct {
	req       table.ScanRequest
	est       sched.Estimates
	wantCells bool
	// out is filled by the window leader; fallback marks members that must
	// re-run individually (failed fused job or unplaceable booking).
	out      ServeOutcome
	fallback bool
}

// fusionGroup is one open fusion window: every member shares the pinned
// epoch and the predicate-column compatibility key.
type fusionGroup struct {
	key     string
	snap    *table.Snapshot
	epoch   uint64
	members []*fusionMember
	full    chan struct{} // closed when FusionMaxFanIn members joined
	done    chan struct{} // closed by the leader when outcomes are ready
	fired   bool          // guarded by System.fusionMu
}

// nowS is Serve's scheduler clock: seconds since system construction, one
// monotone origin shared by every concurrent handler.
func (s *System) nowS() float64 { return time.Since(s.start).Seconds() }

// Serve answers one scalar query through the cache + fusion serving path.
// Safe for concurrent use; concurrency is what fills fusion windows.
func (s *System) Serve(q0 *query.Query) (ServeOutcome, error) {
	started := time.Now()
	if q0.Grouped() {
		return ServeOutcome{}, fmt.Errorf("engine: query %d has GROUP BY; Serve answers scalar queries", q0.ID)
	}
	q := q0.Clone()
	snap := s.pin()
	var epoch uint64
	if snap != nil {
		epoch = snap.Epoch()
	}

	// Translate before the window: fused members must already be integer
	// predicates. A dictionary fault here falls back to the full RunReal
	// path, whose translation worker owns deadline-aware retries.
	if q.NeedsTranslation() {
		if err := s.cfg.Faults.Check(fault.DictLookup, -1); err != nil {
			return s.runSingle(q0, started, nil, epoch)
		}
		if _, err := query.Translate(q, s.dicts()); err != nil {
			return s.runSingle(q0, started, nil, epoch)
		}
	}
	req, empty, err := q.ToScanRequest(s.cfg.Table.Schema())
	if err != nil {
		return ServeOutcome{}, err
	}
	if empty {
		// A predicate names a string no dictionary knows: no row can match
		// at any epoch.
		return ServeOutcome{Latency: time.Since(started)}, nil
	}

	if s.cache != nil {
		if ans, ok := s.cache.lookup(&req, epoch); ok {
			return ServeOutcome{
				Result: ans.result, Queue: ans.queue,
				CacheHit: true, Subsumed: ans.subsumed,
				Latency: time.Since(started),
			}, nil
		}
	}

	est, err := s.Estimate(q)
	if err != nil {
		return ServeOutcome{}, err
	}
	// CPU-answerable queries bypass the window: shared scans target the
	// GPU fact-table path, and the cube walk is already cheap.
	if !s.cfg.FusionEnabled || est.CPUOK {
		return s.runSingle(q, started, &req, epoch)
	}

	m := &fusionMember{req: req, est: est, wantCells: s.wantCells(&req)}
	g, leader := s.joinWindow(epoch, snap, &req, m)
	if leader {
		timer := time.NewTimer(s.cfg.FusionWindow)
		select {
		case <-g.full:
			timer.Stop()
		case <-timer.C:
		}
		s.closeWindow(g)
		s.executeFused(g)
		close(g.done)
	} else {
		<-g.done
	}
	if m.fallback {
		// Fused booking or execution failed: this member retries alone
		// through the existing deadline-aware retry path.
		return s.runSingle(q, started, &req, epoch)
	}
	m.out.Latency = time.Since(started)
	return m.out, nil
}

// cellCoverageFloor gates per-cell accumulation to near-full-domain
// anchor queries: a cell pass costs a map insert per matching row (orders
// of magnitude above a plain scalar scan), so it is only paid for entries
// wide enough that nearly every future narrower query on the same columns
// can fold from them. Everything narrower caches exact-match only.
const cellCoverageFloor = 0.95

// wantCells reports whether Serve should ask the fused kernel for
// per-cell aggregates: the request must be subsumption-shaped AND cover
// (nearly) its whole predicate domain — see cellCoverageFloor.
func (s *System) wantCells(req *table.ScanRequest) bool {
	if s.cache == nil {
		return false
	}
	if _, ok := subsumableShape(req, table.CanonicalPredOrder(req.Predicates)); !ok {
		return false
	}
	sc := s.cfg.Table.Schema()
	coverage := 1.0
	for _, p := range req.Predicates {
		card := sc.LevelCardinality(p.Dim, p.Level)
		coverage *= float64(p.To-p.From+1) / float64(card)
	}
	return coverage >= cellCoverageFloor
}

// runSingle answers one query through RunReal (scheduling, feedback,
// retries included) and caches the answer when req is known.
func (s *System) runSingle(q *query.Query, started time.Time, req *table.ScanRequest, epoch uint64) (ServeOutcome, error) {
	res, err := s.RunReal([]*query.Query{q})
	if err != nil {
		return ServeOutcome{}, err
	}
	o := res.Outcomes[0]
	out := ServeOutcome{
		Result: o.Result, Queue: o.Queue,
		Attempts: o.Attempts, Latency: time.Since(started),
	}
	if o.Err != nil {
		return out, o.Err
	}
	if s.cache != nil && req != nil {
		// RunReal pins its own epoch; epochs are monotone, so the answer is
		// from the epoch Serve pinned iff no newer epoch has been published
		// by now. Skip the store otherwise — never cache cross-epoch bits.
		if cur := s.pin(); cur == nil || cur.Epoch() == epoch {
			s.cache.store(req, epoch, o.Result, nil, o.Queue)
		}
	}
	return out, nil
}

// joinWindow adds a member to the open window of its compatibility key,
// creating one (and making the caller its leader) when none is open.
func (s *System) joinWindow(epoch uint64, snap *table.Snapshot, req *table.ScanRequest, m *fusionMember) (*fusionGroup, bool) {
	key := strconv.FormatUint(epoch, 10) + "/" + table.FusionKey(*req)
	s.fusionMu.Lock()
	defer s.fusionMu.Unlock()
	if g, ok := s.fusionGroups[key]; ok && !g.fired {
		g.members = append(g.members, m)
		if len(g.members) >= s.cfg.FusionMaxFanIn {
			g.fired = true
			delete(s.fusionGroups, key)
			close(g.full)
		}
		return g, false
	}
	g := &fusionGroup{
		key: key, snap: snap, epoch: epoch,
		members: []*fusionMember{m},
		full:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	if len(g.members) >= s.cfg.FusionMaxFanIn {
		g.fired = true
		close(g.full)
	} else {
		s.fusionGroups[key] = g
	}
	return g, true
}

// closeWindow marks the group fired so no further member can join
// (idempotent with the max-fan-in close in joinWindow).
func (s *System) closeWindow(g *fusionGroup) {
	s.fusionMu.Lock()
	if !g.fired {
		g.fired = true
		delete(s.fusionGroups, g.key)
	}
	s.fusionMu.Unlock()
}

// executeFused books and runs one window's members as a single fused GPU
// job, then distributes answers (or marks everyone for individual
// fallback — a fused failure must never fail a member outright).
//
// Identical members are coalesced first: a hot template arriving K times
// in one window executes ONCE, and every duplicate receives the same
// answer — trivially bit-identical (same partition, same bits), and the
// kernel refines each distinct predicate set once instead of K times.
func (s *System) executeFused(g *fusionGroup) {
	members := g.members
	rep := make([]int, len(members)) // member -> index into the unique set
	uniq := make(map[string]int, len(members))
	ests := make([]sched.Estimates, len(members))
	var reqs []table.ScanRequest
	var wantCells []bool
	for i, m := range members {
		// The scheduler books the served fan-in (every member pays its ε);
		// the kernel runs the unique request set.
		ests[i] = m.est
		k := cacheKey(&m.req, table.CanonicalPredOrder(m.req.Predicates))
		if ui, ok := uniq[k]; ok {
			rep[i] = ui
			wantCells[ui] = wantCells[ui] || m.wantCells
			continue
		}
		uniq[k] = len(reqs)
		rep[i] = len(reqs)
		reqs = append(reqs, m.req)
		wantCells = append(wantCells, m.wantCells)
	}
	s.schedMu.Lock()
	d, err := s.scheduler.SubmitFused(s.nowS(), ests)
	s.schedMu.Unlock()
	if err != nil {
		for _, m := range members {
			m.fallback = true
			s.fusionFallbacks.Add(1)
		}
		return
	}
	part := s.cfg.Device.Partitions()[d.Queue.Index]
	t0 := time.Now()
	var answers []gpusim.FusedAnswer
	var execErr error
	if g.snap != nil {
		answers, execErr = part.ExecuteFusedSnapshot(g.snap, reqs, wantCells)
	} else {
		answers, execErr = part.ExecuteFused(reqs, wantCells)
	}
	act := time.Since(t0).Seconds()
	s.schedMu.Lock()
	s.scheduler.Feedback(d.Queue, act-(d.End-d.Start), s.nowS())
	if execErr != nil {
		s.scheduler.ReportFailure(d.Queue, s.nowS())
	} else {
		s.scheduler.ReportSuccess(d.Queue)
	}
	s.schedMu.Unlock()
	if execErr != nil {
		for _, m := range members {
			m.fallback = true
			s.fusionFallbacks.Add(1)
		}
		return
	}
	for i, m := range members {
		a := &answers[rep[i]]
		m.out = ServeOutcome{
			Result: a.Result, Queue: d.Queue,
			Fused: true, FanIn: len(members), Attempts: 1,
		}
	}
	if s.cache != nil {
		for ui := range reqs {
			s.cache.store(&reqs[ui], g.epoch, answers[ui].Result, answers[ui].Cells, d.Queue)
		}
	}
}
