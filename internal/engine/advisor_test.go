package engine

import (
	"testing"

	"hybridolap/internal/table"
)

func advisorSpec(budget int64) AdvisorSpec {
	s := table.PaperSchema()
	return AdvisorSpec{
		Schema:       &s,
		BudgetBytes:  budget,
		LevelWeights: []float64{0.25, 0.25, 0.25, 0.25},
	}
}

func TestAdviseRespectsBudget(t *testing.T) {
	// 1 MB budget: only levels 0 (4KB) and 1 (512KB) fit.
	a, err := Advise(advisorSpec(1 << 20))
	if err != nil {
		t.Fatal(err)
	}
	if a.UsedBytes > 1<<20 {
		t.Fatalf("budget exceeded: %d", a.UsedBytes)
	}
	for _, l := range a.Levels {
		if l > 1 {
			t.Fatalf("level %d cannot fit the budget", l)
		}
	}
}

func TestAdviseMoreBudgetNeverWorse(t *testing.T) {
	prev := -1.0
	for _, budget := range []int64{0, 1 << 20, 600 << 20, 40 << 30} {
		spec := advisorSpec(budget)
		a, err := Advise(spec)
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && a.ExpectedSeconds > prev+1e-12 {
			t.Fatalf("budget %d worsened expected time: %v > %v", budget, a.ExpectedSeconds, prev)
		}
		prev = a.ExpectedSeconds
	}
}

func TestAdviseZeroBudgetMeansGPUOnly(t *testing.T) {
	spec := advisorSpec(1) // nothing fits
	a, err := Advise(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Levels) != 0 || a.CPUFraction != 0 {
		t.Fatalf("advice = %+v, want empty", a)
	}
	if a.ExpectedSeconds <= 0 {
		t.Fatal("GPU-only expected time should be positive")
	}
}

func TestAdviseSkipsUselessLargeCubes(t *testing.T) {
	// With a huge budget the 32 GB cube is affordable, but a typical
	// level-3 sub-cube (25% of 32 GB = 8 GB) takes ~0.34 s on 8 threads vs
	// ~7 ms on the GPU — the advisor must not waste 32 GB on it.
	a, err := Advise(advisorSpec(64 << 30))
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range a.Levels {
		if l == 3 {
			t.Fatalf("advisor selected the 32GB cube despite GPU dominance: %+v", a)
		}
	}
	// Small cubes are free wins: level 0 and 1 should be selected.
	has := map[int]bool{}
	for _, l := range a.Levels {
		has[l] = true
	}
	if !has[0] || !has[1] {
		t.Fatalf("advisor skipped cheap cubes: %+v", a)
	}
}

func TestAdviseTieBreaksTowardLessMemory(t *testing.T) {
	// A workload needing only level 0: selecting level 1 too would not
	// help, so the advisor must not.
	spec := advisorSpec(64 << 30)
	spec.LevelWeights = []float64{1, 0, 0, 0}
	a, err := Advise(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Levels) != 1 || a.Levels[0] != 0 {
		t.Fatalf("advice = %+v, want just level 0", a)
	}
}

func TestAdviseValidation(t *testing.T) {
	if _, err := Advise(AdvisorSpec{}); err == nil {
		t.Fatal("empty spec accepted")
	}
	s := table.PaperSchema()
	if _, err := Advise(AdvisorSpec{Schema: &s}); err == nil {
		t.Fatal("missing weights accepted")
	}
}

func TestAdviseMatchesSetupEndToEnd(t *testing.T) {
	// The advisor's pick must be buildable by Setup and improve modelled
	// throughput versus a GPU-only system on a cube-friendly workload.
	a, err := Advise(advisorSpec(600 << 20))
	if err != nil {
		t.Fatal(err)
	}
	var materialise []int
	for _, l := range a.Levels {
		if l <= 1 { // laptop-scale build
			materialise = append(materialise, l)
		}
	}
	if len(materialise) == 0 {
		t.Skip("advice has no laptop-scale level")
	}
	if _, err := Setup(SetupSpec{Rows: 500, Seed: 1, CubeLevels: materialise}); err != nil {
		t.Fatal(err)
	}
}
