package engine

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"hybridolap/internal/fault"
	"hybridolap/internal/ingest"
	"hybridolap/internal/query"
	"hybridolap/internal/sched"
	"hybridolap/internal/table"
)

// resultBits compares two scan results bit-for-bit.
func resultBits(a, b table.ScanResult) bool {
	return a.Rows == b.Rows && math.Float64bits(a.Value) == math.Float64bits(b.Value)
}

// cacheReq fabricates a one-predicate request for cache unit tests.
func cacheReq(op table.AggOp, from, to uint32) table.ScanRequest {
	return table.ScanRequest{Op: op, Measure: 0, Predicates: []table.RangePredicate{
		{Dim: 0, Level: 1, From: from, To: to},
	}}
}

func TestResultCacheExactKeepFirstEviction(t *testing.T) {
	c := newResultCache(2)
	q1 := cacheReq(table.AggSum, 3, 9)
	r1 := table.ScanResult{Value: 42.5, Rows: 7}
	qr := sched.QueueRef{Kind: sched.QueueGPU, Index: 2}
	c.store(&q1, 0, r1, nil, qr)

	ans, ok := c.lookup(&q1, 0)
	if !ok || !resultBits(ans.result, r1) || ans.queue != qr || ans.subsumed {
		t.Fatalf("exact lookup: ok=%v ans=%+v", ok, ans)
	}

	// A different interval on the same column is a different key.
	q2 := cacheReq(table.AggSum, 3, 10)
	if _, ok := c.lookup(&q2, 0); ok {
		t.Fatal("different interval hit the cache")
	}

	// Keep-first: a second store under the same key must not flap the bits.
	c.store(&q1, 0, table.ScanResult{Value: 99, Rows: 7}, nil, sched.QueueRef{Kind: sched.QueueGPU, Index: 5})
	if ans, ok := c.lookup(&q1, 0); !ok || !resultBits(ans.result, r1) || ans.queue != qr {
		t.Fatalf("keep-first violated: %+v", ans)
	}

	// FIFO eviction at max=2: storing a third entry evicts q1.
	c.store(&q2, 0, table.ScanResult{Value: 1, Rows: 1}, nil, qr)
	q3 := cacheReq(table.AggSum, 0, 1)
	c.store(&q3, 0, table.ScanResult{Value: 2, Rows: 2}, nil, qr)
	if _, ok := c.lookup(&q1, 0); ok {
		t.Fatal("FIFO eviction kept the oldest entry")
	}
	if _, ok := c.lookup(&q2, 0); !ok {
		t.Fatal("eviction dropped a younger entry")
	}
	st := c.snapshotStats()
	if st.Evictions != 1 || st.Stores != 3 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestResultCacheEpochOwnership(t *testing.T) {
	c := newResultCache(0)
	q := cacheReq(table.AggCount, 0, 5)
	r := table.ScanResult{Value: 3, Rows: 3}
	c.store(&q, 1, r, nil, sched.QueueRef{})
	if _, ok := c.lookup(&q, 1); !ok {
		t.Fatal("store at epoch 1 not visible")
	}

	// An older pinned epoch misses without wiping the current entries.
	if _, ok := c.lookup(&q, 0); ok {
		t.Fatal("stale-epoch lookup hit")
	}
	if _, ok := c.lookup(&q, 1); !ok {
		t.Fatal("stale-epoch lookup wiped current entries")
	}
	// A stale store is dropped.
	q2 := cacheReq(table.AggCount, 0, 9)
	c.store(&q2, 0, r, nil, sched.QueueRef{})
	if _, ok := c.lookup(&q2, 1); ok {
		t.Fatal("stale-epoch store was kept")
	}

	// A newer epoch wipes everything exactly once.
	if _, ok := c.lookup(&q, 2); ok {
		t.Fatal("entry survived epoch publication")
	}
	st := c.snapshotStats()
	if st.EpochInvalidations != 1 {
		t.Fatalf("EpochInvalidations = %d, want 1 (stats %+v)", st.EpochInvalidations, st)
	}
	// Wiping an already-empty cache is not an invalidation.
	if _, ok := c.lookup(&q, 3); ok {
		t.Fatal("hit on empty cache")
	}
	if st := c.snapshotStats(); st.EpochInvalidations != 1 {
		t.Fatalf("empty wipe counted as invalidation: %+v", st)
	}
}

// TestResultCacheSubsumptionFold pins the subsumption soundness rule: a
// count/min/max request whose intervals are contained in a cached entry's
// intervals is folded from the entry's cells, bit-identical to scanning
// the narrowed request directly; sum/avg never subsume.
func TestResultCacheSubsumptionFold(t *testing.T) {
	ft, err := table.Generate(table.GenSpec{Schema: table.PaperSchema(), Rows: 4000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	for _, op := range []table.AggOp{table.AggCount, table.AggMin, table.AggMax} {
		c := newResultCache(0)
		outer := table.ScanRequest{Op: op, Measure: 0, Predicates: []table.RangePredicate{
			{Dim: 0, Level: 1, From: 2, To: 29},
			{Dim: 2, Level: 1, From: 1, To: 30},
		}}
		pl, err := table.BindFusedScan(ft, []table.ScanRequest{outer}, []bool{true})
		if err != nil {
			t.Fatal(err)
		}
		if !pl.HasCells(0) {
			t.Fatalf("op %v: cells not granted", op)
		}
		states := make([]table.FusedState, 1)
		if err := pl.RangeInto(0, ft.Rows(), states); err != nil {
			t.Fatal(err)
		}
		stored := table.Finalize(op, table.FoldCells(op, states[0].Cells))
		c.store(&outer, 0, stored, states[0].Cells, sched.QueueRef{Kind: sched.QueueGPU, Index: 1})

		for i := 0; i < 25; i++ {
			inner := outer
			inner.Predicates = append([]table.RangePredicate(nil), outer.Predicates...)
			for pi := range inner.Predicates {
				p := &inner.Predicates[pi]
				w := p.To - p.From
				lo := p.From + uint32(rng.Intn(int(w)+1))
				hi := lo + uint32(rng.Intn(int(p.To-lo)+1))
				p.From, p.To = lo, hi
			}
			ans, ok := c.lookup(&inner, 0)
			exact := true
			for pi := range inner.Predicates {
				if inner.Predicates[pi].From != outer.Predicates[pi].From ||
					inner.Predicates[pi].To != outer.Predicates[pi].To {
					exact = false
				}
			}
			if exact {
				continue // exact key, not the subsumption path
			}
			if !ok || !ans.subsumed {
				t.Fatalf("op %v case %d: no subsumption hit (%+v)", op, i, inner.Predicates)
			}
			want, err := table.Scan(ft, inner)
			if err != nil {
				t.Fatal(err)
			}
			if !resultBits(ans.result, want) {
				t.Fatalf("op %v case %d: subsumed fold (%v, %d) != scan (%v, %d)",
					op, i, ans.result.Value, ans.result.Rows, want.Value, want.Rows)
			}
		}

		// Not contained → miss; different op → different signature → miss.
		wide := outer
		wide.Predicates = append([]table.RangePredicate(nil), outer.Predicates...)
		wide.Predicates[0].From = 0
		if _, ok := c.lookup(&wide, 0); ok {
			t.Fatalf("op %v: non-contained interval subsumed", op)
		}
		sum := outer
		sum.Op = table.AggSum
		if _, ok := c.lookup(&sum, 0); ok {
			t.Fatalf("sum lookup subsumed from %v cells", op)
		}
	}
}

// serveFamilyQuery builds one GPU-bound member of a compatible family:
// level-2 conditions defeat the {0,1} cube set, so the fusion window sees
// it, and every member shares the (dim0 level2, dim1 level2) column set.
func serveFamilyQuery(rng *rand.Rand, op table.AggOp, measure int) *query.Query {
	sub := func(card int) (uint32, uint32) {
		lo := rng.Intn(card)
		hi := lo + rng.Intn(card-lo)
		return uint32(lo), uint32(hi)
	}
	f0, t0 := sub(256)
	f1, t1 := sub(128)
	return &query.Query{
		Conditions: []query.Condition{
			{Dim: 0, Level: 2, From: f0, To: t0},
			{Dim: 1, Level: 2, From: f1, To: t1},
		},
		Measure: measure,
		Op:      op,
	}
}

// TestServeFusedDifferential is the serving-path soundness pin: concurrent
// compatible queries fuse into shared scans, and every answer — fused,
// solo, cached or subsumed — is bit-identical to a fault-free recompute on
// the placement that produced it.
func TestServeFusedDifferential(t *testing.T) {
	s := testSystem(t, func(spec *SetupSpec) {
		spec.Fusion = true
		spec.FusionWindow = 100 * time.Millisecond
		spec.Cache = true
	})
	rng := rand.New(rand.NewSource(11))
	ops := []table.AggOp{table.AggSum, table.AggCount, table.AggMin, table.AggMax, table.AggAvg, table.AggCount}

	maxFanIn := 0
	for round := 0; round < 4; round++ {
		k := len(ops)
		qs := make([]*query.Query, k)
		for i := range qs {
			qs[i] = serveFamilyQuery(rng, ops[i], rng.Intn(2))
			qs[i].ID = int64(round*k + i)
		}
		outs := make([]ServeOutcome, k)
		errs := make([]error, k)
		start := make(chan struct{})
		var wg sync.WaitGroup
		for i := range qs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				<-start
				outs[i], errs[i] = s.Serve(qs[i])
			}(i)
		}
		close(start)
		wg.Wait()
		for i := range qs {
			if errs[i] != nil {
				t.Fatalf("round %d member %d: %v", round, i, errs[i])
			}
			if outs[i].FanIn > maxFanIn {
				maxFanIn = outs[i].FanIn
			}
			want := faultFreeAt(t, s, qs[i], outs[i].Queue)
			if !resultBits(outs[i].Result, want) {
				t.Fatalf("round %d member %d (op %v, fused=%v cache=%v/%v, queue %s): got (%v, %d), want (%v, %d)",
					round, i, ops[i], outs[i].Fused, outs[i].CacheHit, outs[i].Subsumed, outs[i].Queue,
					outs[i].Result.Value, outs[i].Result.Rows, want.Value, want.Rows)
			}
		}

		// Re-serving one member sequentially must be an exact cache hit
		// replaying the identical bits.
		again, err := s.Serve(qs[0])
		if err != nil {
			t.Fatal(err)
		}
		if !again.CacheHit || again.Subsumed || !resultBits(again.Result, outs[0].Result) {
			t.Fatalf("round %d re-serve: %+v vs first %+v", round, again, outs[0])
		}
	}

	st := s.Scheduler().Stats()
	if st.FusedJobs == 0 || maxFanIn < 2 {
		t.Fatalf("fusion never engaged: stats %+v, max fan-in %d", st, maxFanIn)
	}
	if cs := s.CacheStats(); cs.Hits == 0 || cs.Stores == 0 {
		t.Fatalf("cache never engaged: %+v", cs)
	}
}

// TestServeSubsumption drives the wide-then-narrow flow end to end: a wide
// count executes (fan-in 1) and stores its cells; narrowed counts are then
// answered from the cache by exact interval folds.
func TestServeSubsumption(t *testing.T) {
	s := testSystem(t, func(spec *SetupSpec) {
		spec.Fusion = true
		spec.FusionWindow = time.Millisecond
		spec.Cache = true
	})
	wide := &query.Query{
		Conditions: []query.Condition{
			{Dim: 0, Level: 2, From: 0, To: 255},
			{Dim: 1, Level: 2, From: 0, To: 127},
		},
		Op: table.AggCount,
	}
	out, err := s.Serve(wide)
	if err != nil {
		t.Fatal(err)
	}
	if out.CacheHit {
		t.Fatal("first serve hit a cold cache")
	}
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 10; i++ {
		narrow := wide.Clone()
		narrow.Conditions[0].From = uint32(rng.Intn(200)) + 1
		narrow.Conditions[0].To = narrow.Conditions[0].From + uint32(rng.Intn(40))
		narrow.Conditions[1].To = uint32(100 + rng.Intn(28))
		got, err := s.Serve(narrow)
		if err != nil {
			t.Fatal(err)
		}
		if !got.CacheHit || !got.Subsumed {
			t.Fatalf("case %d: not subsumed: %+v", i, got)
		}
		want, err := s.Reference(narrow)
		if err != nil {
			t.Fatal(err)
		}
		if !resultBits(got.Result, want) {
			t.Fatalf("case %d: subsumed (%v, %d) != reference (%v, %d)",
				i, got.Result.Value, got.Result.Rows, want.Value, want.Rows)
		}
	}
	if cs := s.CacheStats(); cs.SubsumptionHits != 10 {
		t.Fatalf("subsumption hits = %d, want 10 (%+v)", cs.SubsumptionHits, cs)
	}
}

// TestServeLiveEpochInvalidation pins the invalidation contract: ingest
// epoch publication wipes the cache, and post-ingest serves see the new
// rows instead of stale cached answers.
func TestServeLiveEpochInvalidation(t *testing.T) {
	s, err := Setup(SetupSpec{
		Rows: 2000, Seed: 1, Live: true,
		Fusion: true, FusionWindow: 5 * time.Millisecond, Cache: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := s.Live().Close(); err != nil {
			t.Errorf("closing live store: %v", err)
		}
	})

	// Full-range count at level 2: every row matches, so the ingested batch
	// must be visible as an exact row-count delta.
	q := &query.Query{
		Conditions: []query.Condition{
			{Dim: 0, Level: 2, From: 0, To: 255},
			{Dim: 1, Level: 2, From: 0, To: 127},
		},
		Op: table.AggCount,
	}
	out1, err := s.Serve(q)
	if err != nil {
		t.Fatal(err)
	}
	if out1.Result.Rows != 2000 {
		t.Fatalf("pre-ingest count %d, want 2000", out1.Result.Rows)
	}
	out2, err := s.Serve(q)
	if err != nil {
		t.Fatal(err)
	}
	if !out2.CacheHit || !resultBits(out2.Result, out1.Result) {
		t.Fatalf("re-serve not a cache hit: %+v", out2)
	}

	rows := make([]table.Row, 12)
	for i := range rows {
		rows[i] = liveRow(i)
	}
	if _, err := s.Ingest(&ingest.Batch{Rows: rows}); err != nil {
		t.Fatal(err)
	}

	out3, err := s.Serve(q)
	if err != nil {
		t.Fatal(err)
	}
	if out3.CacheHit {
		t.Fatal("post-ingest serve answered from the stale epoch's cache")
	}
	if out3.Result.Rows != 2012 {
		t.Fatalf("post-ingest count %d, want 2012", out3.Result.Rows)
	}
	cs := s.CacheStats()
	if cs.EpochInvalidations == 0 {
		t.Fatalf("no epoch invalidation recorded: %+v", cs)
	}
	out4, err := s.Serve(q)
	if err != nil {
		t.Fatal(err)
	}
	if !out4.CacheHit || !resultBits(out4.Result, out3.Result) {
		t.Fatalf("new-epoch re-serve not a cache hit: %+v", out4)
	}
}

// TestChaosServeDifferential runs the serving path under the chaos plan:
// GPU kernel aborts fail fused jobs into individual deadline-aware
// retries, dictionary faults divert to the RunReal translation path, and
// every query that completes must still return bits identical to a
// fault-free recompute on its final placement.
func TestChaosServeDifferential(t *testing.T) {
	const queries = 48
	const wave = 8
	for _, seed := range []int64{1, 2} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			mutate := func(spec *SetupSpec) {
				spec.Rows = 4000
				spec.Seed = 7 // same table both systems
				spec.QuarantineThreshold = 2
				spec.ReprobeSeconds = 0.02
				spec.Fusion = true
				spec.FusionWindow = 5 * time.Millisecond
				spec.FusionMaxFanIn = wave
				spec.Cache = true
			}
			base := testSystem(t, mutate)
			plan := fault.NewPlan(fault.PlanConfig{Seed: seed, Points: map[fault.Point]fault.PointConfig{
				fault.GPUExec:    {Rate: 0.25},
				fault.DictLookup: {Rate: 0.25},
			}})
			chaos := testSystem(t, func(spec *SetupSpec) {
				mutate(spec)
				spec.Faults = plan
			})

			work := chaosWorkload(t, chaos, seed, queries)
			outs := make([]ServeOutcome, queries)
			errs := make([]error, queries)
			for lo := 0; lo < queries; lo += wave {
				hi := lo + wave
				if hi > queries {
					hi = queries
				}
				var wg sync.WaitGroup
				for i := lo; i < hi; i++ {
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						outs[i], errs[i] = chaos.Serve(work[i])
					}(i)
				}
				wg.Wait()
			}

			if plan.TotalFired() == 0 {
				t.Fatal("fault plan never fired; the differential is vacuous")
			}
			pristine := chaosWorkload(t, base, seed, queries)
			failed, fused, cached := 0, 0, 0
			for i := range outs {
				if errs[i] != nil {
					failed++ // a spent retry budget is legal; wrong answers are not
					continue
				}
				if outs[i].Fused {
					fused++
				}
				if outs[i].CacheHit {
					cached++
				}
				if !outs[i].CacheHit && outs[i].Attempts == 0 {
					// Empty translation short-circuit: no row can match.
					if outs[i].Result.Rows != 0 {
						t.Fatalf("query %d: empty-translation outcome with %d rows", i, outs[i].Result.Rows)
					}
					continue
				}
				want := faultFreeAt(t, base, pristine[i], outs[i].Queue)
				if !resultBits(outs[i].Result, want) {
					t.Fatalf("query %d (queue %s, fused=%v cache=%v/%v, %d attempts): chaos (%v, %d) != fault-free (%v, %d)",
						i, outs[i].Queue, outs[i].Fused, outs[i].CacheHit, outs[i].Subsumed, outs[i].Attempts,
						outs[i].Result.Value, outs[i].Result.Rows, want.Value, want.Rows)
				}
			}
			t.Logf("seed %d: fired=%d failed=%d fused=%d cached=%d sched=%+v cache=%+v",
				seed, plan.TotalFired(), failed, fused, cached,
				chaos.Scheduler().Stats().FusedJobs, chaos.CacheStats())
		})
	}
}
