package engine

import (
	"sort"
	"strconv"
	"strings"
	"sync"

	"hybridolap/internal/sched"
	"hybridolap/internal/table"
)

// The result cache: epoch + predicate-interval keyed answers for the
// high-QPS serving path. Two hit kinds:
//
//   - exact: the same translated request (canonical predicate order) at
//     the cache's epoch replays the stored execution result verbatim —
//     bit-for-bit the answer the producing partition computed, for any op;
//   - subsumption: a request whose per-column intervals are contained in a
//     cached entry's intervals is folded from the entry's per-cell
//     aggregates. Served ONLY for count/min/max: their folds are exact
//     (integer addition / selection), so the folded answer is bit-identical
//     to running the narrowed query unfused. Sum/avg folds would replay
//     float additions in cell order instead of row order, so those ops are
//     exact-match only — soundness beats hit rate.
//
// The cache owns exactly one epoch: the first lookup or store that
// observes a newer pinned epoch wipes everything (ingest epoch publication
// is the invalidation signal); lookups for older epochs miss without
// wiping. Eviction is FIFO.

// DefaultCacheMaxEntries bounds the cache when Config.CacheMaxEntries is
// zero.
const DefaultCacheMaxEntries = 4096

// CacheStats counts cache traffic.
type CacheStats struct {
	Hits               int64 // exact-key hits
	Misses             int64
	SubsumptionHits    int64
	EpochInvalidations int64
	Stores             int64
	Evictions          int64
}

// cacheInterval is one predicate's [from, to] code interval, canonical
// column order.
type cacheInterval struct{ from, to uint32 }

type cacheEntry struct {
	key    string
	sig    string
	op     table.AggOp
	result table.ScanResult
	// queue is the placement that produced the stored bits; differential
	// tests recompute on the same partition (unit cutting depends on SM
	// width, so sum/avg bits are partition-specific).
	queue sched.QueueRef
	// hasCells + ivals + keys + vals make the entry subsumption-servable:
	// per-cell partials keyed by packed predicate-column codes, and the
	// entry's own intervals in the same canonical order. The cells are laid
	// out as two aligned arrays sorted by key once at store time, so a fold
	// is a binary search plus a contiguous array scan — no per-cell map
	// lookup, no re-sort.
	hasCells bool
	ivals    []cacheInterval
	keys     []table.GroupKey
	vals     []table.ScanResult
}

type resultCache struct {
	mu      sync.Mutex
	max     int
	epoch   uint64
	entries map[string]*cacheEntry
	bySig   map[string][]*cacheEntry
	order   []string // FIFO eviction order
	stats   CacheStats
}

func newResultCache(max int) *resultCache {
	if max <= 0 {
		max = DefaultCacheMaxEntries
	}
	return &resultCache{
		max:     max,
		entries: make(map[string]*cacheEntry),
		bySig:   make(map[string][]*cacheEntry),
	}
}

// cacheSig is the subsumption signature: op, measure and the canonical
// column list — everything but the intervals.
func cacheSig(req *table.ScanRequest, order []int) string {
	var b strings.Builder
	b.WriteString(strconv.Itoa(int(req.Op)))
	b.WriteByte(';')
	b.WriteString(strconv.Itoa(req.Measure))
	for _, pi := range order {
		p := &req.Predicates[pi]
		b.WriteByte(';')
		if p.Text {
			b.WriteByte('t')
			b.WriteString(strconv.Itoa(p.TextIndex))
		} else {
			b.WriteByte('d')
			b.WriteString(strconv.Itoa(p.Dim))
			b.WriteByte('.')
			b.WriteString(strconv.Itoa(p.Level))
		}
	}
	return b.String()
}

// cacheKey is the exact key: the signature plus every interval (and Or
// list) in canonical order.
func cacheKey(req *table.ScanRequest, order []int) string {
	var b strings.Builder
	b.WriteString(cacheSig(req, order))
	for _, pi := range order {
		p := &req.Predicates[pi]
		b.WriteByte('|')
		b.WriteString(strconv.FormatUint(uint64(p.From), 10))
		b.WriteByte('-')
		b.WriteString(strconv.FormatUint(uint64(p.To), 10))
		for _, r := range p.Or {
			b.WriteByte(',')
			b.WriteString(strconv.FormatUint(uint64(r.From), 10))
			b.WriteByte('-')
			b.WriteString(strconv.FormatUint(uint64(r.To), 10))
		}
	}
	return b.String()
}

// subsumableShape reports whether a request can be served from (or can
// produce) per-cell aggregates: count/min/max over 1-4 pure ranges on
// distinct non-text columns — the mirror of table.BindFusedScan's cell
// grant — and returns the canonical intervals. The cardinality gate lives
// in the table layer; the engine trusts the granted cells' presence.
func subsumableShape(req *table.ScanRequest, order []int) ([]cacheInterval, bool) {
	switch req.Op {
	case table.AggCount, table.AggMin, table.AggMax:
	default:
		return nil, false
	}
	if len(req.Predicates) == 0 || len(req.Predicates) > table.MaxGroupCols {
		return nil, false
	}
	ivals := make([]cacheInterval, 0, len(order))
	for i, pi := range order {
		p := &req.Predicates[pi]
		if p.Text || len(p.Or) > 0 || p.From > p.To {
			return nil, false
		}
		if i > 0 {
			prev := &req.Predicates[order[i-1]]
			if prev.Dim == p.Dim && prev.Level == p.Level {
				return nil, false
			}
		}
		ivals = append(ivals, cacheInterval{from: p.From, to: p.To})
	}
	return ivals, true
}

// cacheAnswer is one lookup's result.
type cacheAnswer struct {
	result   table.ScanResult
	queue    sched.QueueRef
	subsumed bool
}

// checkEpoch wipes the cache when a newer epoch is observed and reports
// whether the given epoch is current. Callers hold c.mu.
func (c *resultCache) checkEpoch(epoch uint64) bool {
	if epoch > c.epoch {
		if len(c.entries) > 0 {
			c.stats.EpochInvalidations++
		}
		c.entries = make(map[string]*cacheEntry)
		c.bySig = make(map[string][]*cacheEntry)
		c.order = c.order[:0]
		c.epoch = epoch
	}
	return epoch == c.epoch
}

// lookup serves a request at the given pinned epoch. Subsumption folds
// run OUTSIDE the cache mutex: entries are immutable once stored (eviction
// only unlinks them), so concurrent lookups fold in parallel instead of
// convoying every worker behind one fold.
func (c *resultCache) lookup(req *table.ScanRequest, epoch uint64) (cacheAnswer, bool) {
	order := table.CanonicalPredOrder(req.Predicates)
	key := cacheKey(req, order)
	var donor *cacheEntry
	var ivals []cacheInterval
	c.mu.Lock()
	if !c.checkEpoch(epoch) {
		c.stats.Misses++
		c.mu.Unlock()
		return cacheAnswer{}, false
	}
	if e, ok := c.entries[key]; ok {
		c.stats.Hits++
		c.mu.Unlock()
		return cacheAnswer{result: e.result, queue: e.queue}, true
	}
	if iv, ok := subsumableShape(req, order); ok {
		for _, e := range c.bySig[cacheSig(req, order)] {
			if e.hasCells && contains(e.ivals, iv) {
				donor, ivals = e, iv
				c.stats.SubsumptionHits++
				break
			}
		}
	}
	if donor == nil {
		c.stats.Misses++
	}
	c.mu.Unlock()
	if donor == nil {
		return cacheAnswer{}, false
	}
	return cacheAnswer{
		result:   table.Finalize(req.Op, foldCellsWithin(req.Op, donor, ivals)),
		queue:    donor.queue,
		subsumed: true,
	}, true
}

// contains reports whether every inner interval lies within the
// corresponding outer interval.
func contains(outer, inner []cacheInterval) bool {
	if len(outer) != len(inner) {
		return false
	}
	for i := range inner {
		if inner[i].from < outer[i].from || inner[i].to > outer[i].to {
			return false
		}
	}
	return true
}

// foldCellsWithin folds the entry's cells whose coordinates fall inside
// ivals — exact for count/min/max, the only ops that reach it. The keys
// were sorted at store time; since the first coordinate occupies the high
// bits of the packed key, the candidates form one contiguous run that a
// binary search finds without touching the rest of the cell set.
func foldCellsWithin(op table.AggOp, e *cacheEntry, ivals []cacheInterval) table.ScanResult {
	n := len(ivals)
	headShift := uint(16 * (n - 1)) // first coordinate lives in the high bits
	lo := sort.Search(len(e.keys), func(i int) bool {
		return uint32(e.keys[i]>>headShift) >= ivals[0].from
	})
	var acc table.ScanResult
	for ki := lo; ki < len(e.keys); ki++ {
		k := e.keys[ki]
		if uint32(k>>headShift) > ivals[0].to {
			break
		}
		in := true
		for i := n - 1; i >= 1; i-- {
			c := uint32(k>>(uint(16*(n-1-i)))) & 0xFFFF
			if c < ivals[i].from || c > ivals[i].to {
				in = false
				break
			}
		}
		if in {
			acc = table.Merge(op, acc, e.vals[ki])
		}
	}
	return acc
}

// store records an executed answer at its pinned epoch. cells may be nil
// (exact-match-only entry). Stale-epoch stores are dropped; an existing
// entry is kept (first-stored bits win, so repeated executions on
// different partitions never flap a cached sum's bits).
func (c *resultCache) store(req *table.ScanRequest, epoch uint64, res table.ScanResult, cells table.Groups, queue sched.QueueRef) {
	order := table.CanonicalPredOrder(req.Predicates)
	key := cacheKey(req, order)
	// Build the entry (including the potentially large key sort) before
	// taking the lock; a stale-epoch or duplicate store wastes the work but
	// never stalls concurrent lookups.
	e := &cacheEntry{key: key, op: req.Op, result: res, queue: queue}
	if cells != nil {
		if ivals, ok := subsumableShape(req, order); ok {
			e.hasCells = true
			e.ivals = ivals
			e.sig = cacheSig(req, order)
			e.keys = make([]table.GroupKey, 0, len(cells))
			for k := range cells {
				e.keys = append(e.keys, k)
			}
			sort.Slice(e.keys, func(i, j int) bool { return e.keys[i] < e.keys[j] })
			e.vals = make([]table.ScanResult, len(e.keys))
			for i, k := range e.keys {
				e.vals[i] = cells[k]
			}
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.checkEpoch(epoch) {
		return
	}
	if _, ok := c.entries[key]; ok {
		return
	}
	c.entries[key] = e
	c.order = append(c.order, key)
	if e.hasCells {
		c.bySig[e.sig] = append(c.bySig[e.sig], e)
	}
	c.stats.Stores++
	for len(c.entries) > c.max {
		victim := c.order[0]
		c.order = c.order[1:]
		v, ok := c.entries[victim]
		if !ok {
			continue
		}
		delete(c.entries, victim)
		if v.hasCells {
			peers := c.bySig[v.sig]
			for i, p := range peers {
				if p == v {
					c.bySig[v.sig] = append(peers[:i], peers[i+1:]...)
					break
				}
			}
			if len(c.bySig[v.sig]) == 0 {
				delete(c.bySig, v.sig)
			}
		}
		c.stats.Evictions++
	}
}

// snapshotStats copies the counters.
func (c *resultCache) snapshotStats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// CacheStats returns the result cache counters (zero when the cache is
// disabled).
func (s *System) CacheStats() CacheStats {
	if s.cache == nil {
		return CacheStats{}
	}
	return s.cache.snapshotStats()
}
