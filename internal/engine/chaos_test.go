package engine

import (
	"fmt"
	"math"
	"testing"

	"hybridolap/internal/fault"
	"hybridolap/internal/query"
	"hybridolap/internal/sched"
	"hybridolap/internal/table"
)

// faultFreeAt recomputes a query fault-free on an explicit placement,
// using a system with no fault plan installed. Partition reductions are
// deterministic (per-unit partials merge in unit order), so this is the
// bit-exact answer the same placement must produce in the chaos run.
func faultFreeAt(t *testing.T, s *System, q0 *query.Query, queue sched.QueueRef) table.ScanResult {
	t.Helper()
	q := q0.Clone()
	if q.NeedsTranslation() {
		if _, err := query.Translate(q, s.Dicts()); err != nil {
			t.Fatal(err)
		}
	}
	var r table.ScanResult
	var err error
	if queue.Kind == sched.QueueCPU {
		r, err = s.AnswerOnCPUAt(q, nil)
	} else {
		r, err = s.AnswerOnGPUAt(q, queue.Index, nil)
	}
	if err != nil {
		t.Fatalf("fault-free recompute of query %d on %s: %v", q0.ID, queue, err)
	}
	return r
}

// chaosWorkload regenerates the identical query stream for one seed:
// queries are mutated in place by translation, so each run gets a fresh
// copy from the same generator seed.
func chaosWorkload(t *testing.T, s *System, seed int64, n int) []*query.Query {
	t.Helper()
	return testGen(t, s, seed, 0.3).Batch(n)
}

// TestChaosDifferentialRunReal is the tentpole invariant: under an
// injected fault plan (GPU kernel aborts + dictionary miss storms), every
// query that completes returns a result bit-identical to the fault-free
// run of the same workload. Faults may cost retries, quarantines and
// failovers — never wrong answers.
func TestChaosDifferentialRunReal(t *testing.T) {
	const queries = 60
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			mutate := func(spec *SetupSpec) {
				spec.Rows = 4000
				spec.Seed = 7 // same table both runs
				spec.QuarantineThreshold = 2
				spec.ReprobeSeconds = 0.02
			}

			base := testSystem(t, mutate)
			baseRes, err := base.RunReal(chaosWorkload(t, base, seed, queries))
			if err != nil {
				t.Fatal(err)
			}
			if baseRes.Failed != 0 {
				t.Fatalf("fault-free run failed %d queries", baseRes.Failed)
			}

			plan := fault.NewPlan(fault.PlanConfig{Seed: seed, Points: map[fault.Point]fault.PointConfig{
				fault.GPUExec:    {Rate: 0.25},
				fault.DictLookup: {Rate: 0.25},
			}})
			chaos := testSystem(t, func(spec *SetupSpec) {
				mutate(spec)
				spec.Faults = plan
			})
			chaosRes, err := chaos.RunReal(chaosWorkload(t, chaos, seed, queries))
			if err != nil {
				t.Fatal(err)
			}

			if plan.TotalFired() == 0 {
				t.Fatal("fault plan never fired; the differential is vacuous")
			}
			if chaosRes.Retried == 0 && chaosRes.Failed == 0 {
				t.Fatal("faults fired but nothing was retried or failed")
			}
			// Differential: every completed chaos query must return exactly
			// what its final placement returns fault-free — bit-identical
			// value, same rows. Different placements sum floats in different
			// orders, so the bitwise comparison is placement-matched; row
			// counts are integers and must also agree with the baseline run
			// regardless of placement.
			pristine := chaosWorkload(t, base, seed, queries)
			for i, co := range chaosRes.Outcomes {
				if co.Err != nil {
					continue // a spent retry budget is legal; wrong answers are not
				}
				bo := baseRes.Outcomes[i]
				if co.ID != bo.ID {
					t.Fatalf("workload diverged at slot %d: id %d vs %d", i, co.ID, bo.ID)
				}
				if co.Result.Rows != bo.Result.Rows {
					t.Fatalf("query %d: chaos run matched %d rows, fault-free %d",
						co.ID, co.Result.Rows, bo.Result.Rows)
				}
				want := faultFreeAt(t, base, pristine[i], co.Queue)
				if math.Float64bits(co.Result.Value) != math.Float64bits(want.Value) ||
					co.Result.Rows != want.Rows {
					t.Fatalf("query %d (queue %s, %d attempts): chaos result (%v, %d rows) != fault-free (%v, %d rows)",
						co.ID, co.Queue, co.Attempts, co.Result.Value, co.Result.Rows, want.Value, want.Rows)
				}
			}
			st := chaosRes.SchedStats
			if st.PartitionFailures == 0 {
				t.Fatal("no partition failures recorded despite fired GPU faults")
			}
			t.Logf("seed %d: fired=%d retried=%d failed=%d resubmitted=%d quarantines=%d reprobes=%d",
				seed, plan.TotalFired(), chaosRes.Retried, chaosRes.Failed,
				st.Resubmitted, st.Quarantines, st.Reprobes)
		})
	}
}

// TestChaosTotalGPUFailover drives every GPU attempt to failure: the
// health layer quarantines all partitions and CPU-answerable queries must
// still complete — correctly — via the policy's CPU fallback, while
// GPU-only (text) queries fail cleanly once their retry budget is spent.
func TestChaosTotalGPUFailover(t *testing.T) {
	const queries = 30
	mutate := func(spec *SetupSpec) {
		spec.Rows = 3000
		spec.Seed = 7
		spec.QuarantineThreshold = 1
		spec.ReprobeSeconds = 1e6 // quarantined partitions never come back
		spec.MaxRetries = 8       // enough attempts to outlive the quarantine sweep
	}
	// No text predicates: the point here is the CPU/cube failover, and
	// cubes cannot answer text queries at all.
	base := testSystem(t, mutate)
	baseRes, err := base.RunReal(testGen(t, base, 11, 0).Batch(queries))
	if err != nil {
		t.Fatal(err)
	}

	plan := fault.NewPlan(fault.PlanConfig{Seed: 11, Points: map[fault.Point]fault.PointConfig{
		fault.GPUExec: {Rate: 1},
	}})
	chaos := testSystem(t, func(spec *SetupSpec) {
		mutate(spec)
		spec.Faults = plan
	})
	chaosRes, err := chaos.RunReal(testGen(t, chaos, 11, 0).Batch(queries))
	if err != nil {
		t.Fatal(err)
	}

	pristine := testGen(t, base, 11, 0).Batch(queries)
	completed := 0
	for i, co := range chaosRes.Outcomes {
		if co.Err != nil {
			continue
		}
		completed++
		bo := baseRes.Outcomes[i]
		if co.Result.Rows != bo.Result.Rows {
			t.Fatalf("query %d: failover matched %d rows, fault-free %d", co.ID, co.Result.Rows, bo.Result.Rows)
		}
		want := faultFreeAt(t, base, pristine[i], co.Queue)
		if math.Float64bits(co.Result.Value) != math.Float64bits(want.Value) || co.Result.Rows != want.Rows {
			t.Fatalf("query %d: failover result (%v, %d) != fault-free (%v, %d)",
				co.ID, co.Result.Value, co.Result.Rows, want.Value, want.Rows)
		}
	}
	if completed == 0 {
		t.Fatal("no query survived total GPU failure; CPU failover is broken")
	}
	if chaosRes.SchedStats.Quarantines == 0 {
		t.Fatal("total GPU failure quarantined nothing")
	}
	states := chaos.Scheduler().HealthStates()
	quarantined := 0
	for _, h := range states {
		if h != 0 { // anything not Healthy
			quarantined++
		}
	}
	if quarantined == 0 {
		t.Fatalf("health states %v: expected quarantined partitions", states)
	}
	t.Logf("completed=%d/%d failed=%d quarantines=%d states=%v",
		completed, queries, chaosRes.Failed, chaosRes.SchedStats.Quarantines, states)
}
