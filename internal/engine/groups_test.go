package engine

import (
	"math"
	"testing"

	"hybridolap/internal/query"
	"hybridolap/internal/table"
)

func groupRowsEqual(t *testing.T, got, want []table.GroupRow, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d groups, want %d", label, len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if len(g.Keys) != len(w.Keys) {
			t.Fatalf("%s group %d: key arity %d vs %d", label, i, len(g.Keys), len(w.Keys))
		}
		for k := range w.Keys {
			if g.Keys[k] != w.Keys[k] {
				t.Fatalf("%s group %d: keys %v vs %v", label, i, g.Keys, w.Keys)
			}
		}
		if g.Rows != w.Rows || math.Abs(g.Value-w.Value) > 1e-6*math.Max(1, math.Abs(w.Value)) {
			t.Fatalf("%s group %d: (%v,%d) vs (%v,%d)", label, i, g.Value, g.Rows, w.Value, w.Rows)
		}
	}
}

func TestGroupedCPUAndGPUAgree(t *testing.T) {
	s := testSystem(t, nil)
	q := &query.Query{
		ID: 1,
		Conditions: []query.Condition{
			{Dim: 0, Level: 1, From: 0, To: 23},
		},
		GroupBy: []query.GroupRef{{Dim: 0, Level: 0}, {Dim: 1, Level: 0}},
		Measure: 0, Op: table.AggSum,
	}
	if err := q.Validate(s.Config().Table.Schema()); err != nil {
		t.Fatal(err)
	}
	ref, err := s.ReferenceGroups(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) == 0 {
		t.Fatal("reference produced no groups")
	}
	cpu, err := s.AnswerGroupsOnCPU(q)
	if err != nil {
		t.Fatal(err)
	}
	groupRowsEqual(t, cpu, ref, "cpu")
	for p := 0; p < 6; p++ {
		gpu, err := s.AnswerGroupsOnGPU(q.Clone(), p)
		if err != nil {
			t.Fatal(err)
		}
		groupRowsEqual(t, gpu, ref, "gpu")
	}
}

func TestGroupedAllOpsAgree(t *testing.T) {
	s := testSystem(t, nil)
	for _, op := range []table.AggOp{table.AggSum, table.AggCount, table.AggMin, table.AggMax, table.AggAvg} {
		q := &query.Query{
			Conditions: []query.Condition{{Dim: 1, Level: 0, From: 0, To: 2}},
			GroupBy:    []query.GroupRef{{Dim: 2, Level: 0}},
			Measure:    0, Op: op,
		}
		ref, err := s.ReferenceGroups(q)
		if err != nil {
			t.Fatal(err)
		}
		cpu, err := s.AnswerGroupsOnCPU(q)
		if err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		groupRowsEqual(t, cpu, ref, op.String()+"/cpu")
		gpu, err := s.AnswerGroupsOnGPU(q.Clone(), 4)
		if err != nil {
			t.Fatal(err)
		}
		groupRowsEqual(t, gpu, ref, op.String()+"/gpu")
	}
}

func TestGroupedTextGPUOnly(t *testing.T) {
	s := testSystem(t, nil)
	q := &query.Query{
		GroupBy: []query.GroupRef{{Text: true, Column: "store_name"}},
		Measure: 0, Op: table.AggCount,
	}
	if !q.GPUOnly() {
		t.Fatal("text grouping should be GPU-only")
	}
	if _, err := s.AnswerGroupsOnCPU(q); err == nil {
		t.Fatal("CPU answered a text-grouped query")
	}
	ref, err := s.ReferenceGroups(q)
	if err != nil {
		t.Fatal(err)
	}
	gpu, err := s.AnswerGroupsOnGPU(q.Clone(), 0)
	if err != nil {
		t.Fatal(err)
	}
	groupRowsEqual(t, gpu, ref, "text-group")
	var total int64
	for _, r := range gpu {
		total += r.Rows
	}
	if total != int64(s.Config().Table.Rows()) {
		t.Fatalf("rows total %d, want %d", total, s.Config().Table.Rows())
	}
}

func TestGroupedWithTranslatedPredicate(t *testing.T) {
	s := testSystem(t, nil)
	d, _ := s.Config().Table.Dicts().Get("store_name")
	lit, _ := d.Decode(3)
	q := &query.Query{
		TextConds: []query.TextCondition{{Column: "store_name", From: lit, To: lit}},
		GroupBy:   []query.GroupRef{{Dim: 0, Level: 0}},
		Measure:   0, Op: table.AggSum,
	}
	ref, err := s.ReferenceGroups(q)
	if err != nil {
		t.Fatal(err)
	}
	qq := q.Clone()
	if _, err := query.Translate(qq, s.Config().Table.Dicts()); err != nil {
		t.Fatal(err)
	}
	gpu, err := s.AnswerGroupsOnGPU(qq, 2)
	if err != nil {
		t.Fatal(err)
	}
	groupRowsEqual(t, gpu, ref, "translated-group")
}

func TestRunGroupedSchedules(t *testing.T) {
	s := testSystem(t, nil)
	// A cube-able grouped query routes to CPU (tiny sub-cube) and matches
	// the reference.
	q := &query.Query{
		Conditions: []query.Condition{{Dim: 0, Level: 0, From: 0, To: 3}},
		GroupBy:    []query.GroupRef{{Dim: 0, Level: 0}},
		Measure:    0, Op: table.AggSum,
	}
	rows, queue, err := s.RunGrouped(q)
	if err != nil {
		t.Fatal(err)
	}
	if queue != "cpu" {
		t.Fatalf("queue = %s, want cpu", queue)
	}
	ref, _ := s.ReferenceGroups(q)
	groupRowsEqual(t, rows, ref, "scheduled")

	// A text-grouped query routes to a GPU partition.
	qt := &query.Query{
		GroupBy: []query.GroupRef{{Text: true, Column: "customer_city"}},
		Measure: 0, Op: table.AggCount,
	}
	_, queue, err = s.RunGrouped(qt)
	if err != nil {
		t.Fatal(err)
	}
	if queue == "cpu" {
		t.Fatal("text-grouped query scheduled to CPU")
	}
	// The caller's query must stay untranslated.
	if qt.TextConds != nil {
		t.Fatal("unexpected text conds")
	}
}

func TestGroupedEstimateIncludesGroupColumns(t *testing.T) {
	s := testSystem(t, nil)
	base := &query.Query{
		Conditions: []query.Condition{{Dim: 0, Level: 0, From: 0, To: 3}},
		Measure:    0, Op: table.AggSum,
	}
	grouped := base.Clone()
	grouped.GroupBy = []query.GroupRef{{Dim: 1, Level: 0}, {Dim: 2, Level: 0}}
	e1, err := s.Estimate(base)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := s.Estimate(grouped)
	if err != nil {
		t.Fatal(err)
	}
	// Two more columns accessed -> strictly larger GPU estimates (eq. 12).
	if e2.GPUSeconds[0] <= e1.GPUSeconds[0] {
		t.Fatalf("grouped GPU estimate %v not above scalar %v", e2.GPUSeconds[0], e1.GPUSeconds[0])
	}
}

func TestGroupedEstimatePicksFineCube(t *testing.T) {
	// Conditions at level 0 but grouping at level 2: only a level>=2 cube
	// can answer, and the setup has cubes only at 0 and 1 -> not CPUOK.
	s := testSystem(t, nil)
	q := &query.Query{
		Conditions: []query.Condition{{Dim: 0, Level: 0, From: 0, To: 3}},
		GroupBy:    []query.GroupRef{{Dim: 0, Level: 2}},
		Measure:    0, Op: table.AggSum,
	}
	est, err := s.Estimate(q)
	if err != nil {
		t.Fatal(err)
	}
	if est.CPUOK {
		t.Fatal("level-2 grouping should not be CPU-answerable with cubes {0,1}")
	}
	if _, err := s.AnswerGroupsOnCPU(q); err == nil {
		t.Fatal("AnswerGroupsOnCPU should fail for too-fine grouping")
	}
}
