package engine

import (
	"fmt"
	"sync"
	"time"

	"hybridolap/internal/query"
	"hybridolap/internal/sched"
	"hybridolap/internal/table"
)

// RealOutcome records one query's real execution.
type RealOutcome struct {
	ID      int64
	Queue   sched.QueueRef
	Result  table.ScanResult
	Latency time.Duration
	// EstServiceSeconds is the model's service-time estimate for the
	// chosen partition; ActServiceSeconds the measured service time. Their
	// ratio is the calibration error the feedback loop absorbs.
	EstServiceSeconds float64
	ActServiceSeconds float64
	Err               error
}

// RealResult summarises a RunReal execution.
type RealResult struct {
	Queries    int
	Completed  int
	Failed     int
	Elapsed    time.Duration
	Throughput float64 // completed queries per wall-clock second
	Outcomes   []RealOutcome
	SchedStats sched.Stats
}

// realJob carries a scheduled query to its partition worker.
type realJob struct {
	q        *query.Query
	decision sched.Decision
	est      sched.Estimates
	started  time.Time
	slot     int // index into outcomes
	// snap is the epoch pinned at bind time (nil on static systems): the
	// worker answers exactly this snapshot no matter how much ingest or
	// compaction happens while the job queues.
	snap *table.Snapshot
}

// RunReal executes every query for real: the scheduler (driven by the wall
// clock) places each query; goroutine workers embody the partitions — one
// for the CPU cube partition, one for the translation partition and one
// per GPU partition. Queries routed to the GPU with text predicates pass
// through the translation worker first, exactly like the paper's pipeline.
//
// Feedback uses real measured service times, so estimation error in the
// calibrated models is corrected while the run proceeds.
func (s *System) RunReal(queries []*query.Query) (*RealResult, error) {
	parts := s.cfg.Device.Partitions()
	res := &RealResult{Queries: len(queries), Outcomes: make([]RealOutcome, len(queries))}

	cpuCh := make(chan realJob, len(queries))
	transCh := make(chan realJob, len(queries))
	gpuCh := make([]chan realJob, len(parts))
	for i := range gpuCh {
		gpuCh[i] = make(chan realJob, len(queries))
	}

	start := time.Now()
	nowS := func() float64 { return time.Since(start).Seconds() }

	// The system-wide schedMu serialises scheduler access: workers here,
	// concurrent RunGrouped/Explain calls and the compaction pacer all
	// mutate the same queue clocks.
	feedback := func(ref sched.QueueRef, delta float64) {
		s.schedMu.Lock()
		s.scheduler.Feedback(ref, delta, nowS())
		s.schedMu.Unlock()
	}

	var wg sync.WaitGroup
	done := func(j realJob, r table.ScanResult, est, act float64, err error) {
		res.Outcomes[j.slot] = RealOutcome{
			ID: j.q.ID, Queue: j.decision.Queue, Result: r,
			Latency:           time.Since(j.started),
			EstServiceSeconds: est, ActServiceSeconds: act,
			Err: err,
		}
		wg.Done()
	}

	// CPU cube partition worker.
	go func() {
		for j := range cpuCh {
			t0 := time.Now()
			r, err := s.AnswerOnCPUAt(j.q, j.snap)
			act := time.Since(t0).Seconds()
			feedback(j.decision.Queue, act-j.est.CPUSeconds)
			done(j, r, j.est.CPUSeconds, act, err)
		}
	}()

	// Translation partition worker: translate, then forward to the GPU
	// queue chosen by the scheduler. Live systems translate against the
	// growing append dictionaries; codes for strings added after the
	// job's pinned epoch match no pinned row, so answers stay stable.
	go func() {
		transQueue := sched.QueueRef{Kind: sched.QueueCPU, Index: -1}
		for j := range transCh {
			t0 := time.Now()
			_, err := query.Translate(j.q, s.dicts())
			feedback(transQueue, time.Since(t0).Seconds()-j.est.TransSeconds)
			if err != nil {
				done(j, table.ScanResult{}, j.est.TransSeconds, 0, err)
				continue
			}
			gpuCh[j.decision.Queue.Index] <- j
		}
	}()

	// GPU partition workers.
	for i := range parts {
		i := i
		go func() {
			for j := range gpuCh[i] {
				t0 := time.Now()
				r, err := s.AnswerOnGPUAt(j.q, i, j.snap)
				act := time.Since(t0).Seconds()
				feedback(j.decision.Queue, act-j.est.GPUSeconds[i])
				done(j, r, j.est.GPUSeconds[i], act, err)
			}
		}()
	}

	// Drive: estimate, schedule, route. A submission error must not return
	// directly: the workers above block on their channels forever unless
	// every channel is closed, so the error is recorded, submission stops,
	// and the in-flight jobs drain before the single exit below.
	var submitErr error
	for slot, q0 := range queries {
		if q0.Grouped() {
			submitErr = fmt.Errorf("engine: query %d has GROUP BY; use RunGrouped", q0.ID)
			break
		}
		q := q0.Clone() // translation mutates the query
		est, err := s.Estimate(q)
		if err != nil {
			submitErr = fmt.Errorf("engine: estimating query %d: %w", q.ID, err)
			break
		}
		s.schedMu.Lock()
		d, err := s.scheduler.Submit(nowS(), est)
		s.schedMu.Unlock()
		if err != nil {
			submitErr = fmt.Errorf("engine: scheduling query %d: %w", q.ID, err)
			break
		}
		wg.Add(1)
		j := realJob{q: q, decision: d, est: est, started: time.Now(), slot: slot, snap: s.pin()}
		switch {
		case d.Queue.Kind == sched.QueueCPU:
			cpuCh <- j
		case est.NeedsTranslation:
			transCh <- j
		default:
			gpuCh[d.Queue.Index] <- j
		}
	}
	wg.Wait()
	close(cpuCh)
	close(transCh)
	for _, ch := range gpuCh {
		close(ch)
	}
	if submitErr != nil {
		return nil, submitErr
	}

	res.Elapsed = time.Since(start)
	for _, o := range res.Outcomes {
		if o.Err != nil {
			res.Failed++
		} else {
			res.Completed++
		}
	}
	if secs := res.Elapsed.Seconds(); secs > 0 {
		res.Throughput = float64(res.Completed) / secs
	}
	s.schedMu.Lock()
	res.SchedStats = s.scheduler.Stats()
	s.schedMu.Unlock()
	return res, nil
}
