package engine

import (
	"fmt"
	"sync"
	"time"

	"hybridolap/internal/fault"
	"hybridolap/internal/query"
	"hybridolap/internal/sched"
	"hybridolap/internal/table"
)

// RealOutcome records one query's real execution.
type RealOutcome struct {
	ID      int64
	Queue   sched.QueueRef
	Result  table.ScanResult
	Latency time.Duration
	// EstServiceSeconds is the model's service-time estimate for the
	// chosen partition; ActServiceSeconds the measured service time. Their
	// ratio is the calibration error the feedback loop absorbs.
	EstServiceSeconds float64
	ActServiceSeconds float64
	// Attempts counts executions including the final one: 1 means the
	// first placement succeeded, more means failed attempts were re-booked
	// through the scheduler.
	Attempts int
	Err      error
}

// RealResult summarises a RunReal execution.
type RealResult struct {
	Queries    int
	Completed  int
	Failed     int
	Retried    int // queries that needed more than one attempt
	Elapsed    time.Duration
	Throughput float64 // completed queries per wall-clock second
	Outcomes   []RealOutcome
	SchedStats sched.Stats
}

// realJob carries a scheduled query to its partition worker.
type realJob struct {
	q        *query.Query
	decision sched.Decision
	est      sched.Estimates
	started  time.Time
	slot     int // index into outcomes
	attempt  int // 0-based attempt counter
	// snap is the epoch pinned at bind time (nil on static systems): the
	// worker answers exactly this snapshot no matter how much ingest or
	// compaction happens while the job queues. Retries keep the original
	// pin, so a query's answer is independent of how many attempts it took.
	snap *table.Snapshot
}

// retries returns the effective retry budget (negative config disables).
func (s *System) retries() int {
	if s.cfg.MaxRetries < 0 {
		return 0
	}
	return s.cfg.MaxRetries
}

// RunReal executes every query for real: the scheduler (driven by the wall
// clock) places each query; goroutine workers embody the partitions — one
// for the CPU cube partition, one for the translation partition and one
// per GPU partition. Queries routed to the GPU with text predicates pass
// through the translation worker first, exactly like the paper's pipeline.
//
// Feedback uses real measured service times, so estimation error in the
// calibrated models is corrected while the run proceeds.
//
// Failure handling: a failed GPU or translation attempt is re-booked
// through the normal scheduling path (Resubmit) with the query's original
// absolute deadline, so the retry competes with whatever slack remains.
// The scheduler's partition-health layer quarantines repeat offenders and
// the policy's own CPU preference provides the failover path; a query is
// reported failed only after its retry budget is spent or rescheduling
// itself fails (e.g. every GPU partition quarantined on a GPU-only query).
func (s *System) RunReal(queries []*query.Query) (*RealResult, error) {
	parts := s.cfg.Device.Partitions()
	res := &RealResult{Queries: len(queries), Outcomes: make([]RealOutcome, len(queries))}
	maxAttempts := 1 + s.retries()

	// Every channel is buffered for the full query count: at most one copy
	// of each job is in flight at a time (a retry re-enters exactly one
	// queue), so no send below can block forever and the single close
	// point after wg.Wait is safe.
	cpuCh := make(chan realJob, len(queries))
	transCh := make(chan realJob, len(queries))
	retryCh := make(chan realJob, len(queries))
	gpuCh := make([]chan realJob, len(parts))
	for i := range gpuCh {
		gpuCh[i] = make(chan realJob, len(queries))
	}

	start := time.Now()
	nowS := func() float64 { return time.Since(start).Seconds() }

	// The system-wide schedMu serialises scheduler access: workers here,
	// concurrent RunGrouped/Explain calls and the compaction pacer all
	// mutate the same queue clocks.
	feedback := func(ref sched.QueueRef, delta float64) {
		s.schedMu.Lock()
		s.scheduler.Feedback(ref, delta, nowS())
		s.schedMu.Unlock()
	}

	var wg sync.WaitGroup
	done := func(j realJob, r table.ScanResult, est, act float64, err error) {
		res.Outcomes[j.slot] = RealOutcome{
			ID: j.q.ID, Queue: j.decision.Queue, Result: r,
			Latency:           time.Since(j.started),
			EstServiceSeconds: est, ActServiceSeconds: act,
			Attempts: j.attempt + 1,
			Err:      err,
		}
		wg.Done()
	}
	route := func(j realJob) {
		switch {
		case j.decision.Queue.Kind == sched.QueueCPU:
			cpuCh <- j
		case j.est.NeedsTranslation:
			transCh <- j
		default:
			gpuCh[j.decision.Queue.Index] <- j
		}
	}

	// CPU cube partition worker. CPU failures are deterministic (a query
	// the cube set cannot answer fails the same way every time), so they
	// are not retried.
	go func() {
		for j := range cpuCh {
			t0 := time.Now()
			r, err := s.AnswerOnCPUAt(j.q, j.snap)
			act := time.Since(t0).Seconds()
			feedback(j.decision.Queue, act-j.est.CPUSeconds)
			done(j, r, j.est.CPUSeconds, act, err)
		}
	}()

	// Translation partition worker: translate, then forward to the GPU
	// queue chosen by the scheduler. Live systems translate against the
	// growing append dictionaries; codes for strings added after the
	// job's pinned epoch match no pinned row, so answers stay stable.
	// A dictionary miss storm (fault.DictLookup) fails the attempt and
	// sends it through the retry path like a GPU fault.
	go func() {
		transQueue := sched.QueueRef{Kind: sched.QueueCPU, Index: -1}
		for j := range transCh {
			t0 := time.Now()
			err := s.cfg.Faults.Check(fault.DictLookup, -1)
			if err == nil {
				_, err = query.Translate(j.q, s.dicts())
			}
			feedback(transQueue, time.Since(t0).Seconds()-j.est.TransSeconds)
			if err != nil {
				if j.attempt+1 < maxAttempts {
					retryCh <- j
					continue
				}
				done(j, table.ScanResult{}, j.est.TransSeconds, 0, err)
				continue
			}
			gpuCh[j.decision.Queue.Index] <- j
		}
	}()

	// GPU partition workers: record feedback and partition health for
	// every attempt, successful or not, then either finalise or hand the
	// failed job to the retry loop.
	for i := range parts {
		i := i
		go func() {
			for j := range gpuCh[i] {
				t0 := time.Now()
				r, err := s.AnswerOnGPUAt(j.q, i, j.snap)
				act := time.Since(t0).Seconds()
				s.schedMu.Lock()
				s.scheduler.Feedback(j.decision.Queue, act-j.est.GPUSeconds[i], nowS())
				if err != nil {
					s.scheduler.ReportFailure(j.decision.Queue, nowS())
				} else {
					s.scheduler.ReportSuccess(j.decision.Queue)
				}
				s.schedMu.Unlock()
				if err != nil && j.attempt+1 < maxAttempts {
					retryCh <- j
					continue
				}
				done(j, r, j.est.GPUSeconds[i], act, err)
			}
		}()
	}

	// Retry loop: re-book the failed job with its original absolute
	// deadline. Translation state rides the query itself (a retried job
	// that already translated skips the translation queue), so the
	// estimates are refreshed to match before rescheduling.
	go func() {
		for j := range retryCh {
			j.attempt++
			j.est.NeedsTranslation = j.q.NeedsTranslation()
			if !j.est.NeedsTranslation {
				j.est.TransSeconds = 0
			}
			s.schedMu.Lock()
			d, err := s.scheduler.Resubmit(nowS(), j.decision.Deadline, j.est)
			s.schedMu.Unlock()
			if err != nil {
				done(j, table.ScanResult{}, 0, 0,
					fmt.Errorf("engine: rescheduling query %d after failed attempt %d: %w", j.q.ID, j.attempt, err))
				continue
			}
			j.decision = d
			route(j)
		}
	}()

	// Drive: estimate, schedule, route. A submission error must not return
	// directly: the workers above block on their channels forever unless
	// every channel is closed, so the error is recorded, submission stops,
	// and the in-flight jobs drain before the single exit below.
	var submitErr error
	for slot, q0 := range queries {
		if q0.Grouped() {
			submitErr = fmt.Errorf("engine: query %d has GROUP BY; use RunGrouped", q0.ID)
			break
		}
		q := q0.Clone() // translation mutates the query
		est, err := s.Estimate(q)
		if err != nil {
			submitErr = fmt.Errorf("engine: estimating query %d: %w", q.ID, err)
			break
		}
		s.schedMu.Lock()
		d, err := s.scheduler.Submit(nowS(), est)
		s.schedMu.Unlock()
		if err != nil {
			submitErr = fmt.Errorf("engine: scheduling query %d: %w", q.ID, err)
			break
		}
		wg.Add(1)
		route(realJob{q: q, decision: d, est: est, started: time.Now(), slot: slot, snap: s.pin()})
	}
	wg.Wait()
	close(cpuCh)
	close(transCh)
	close(retryCh)
	for _, ch := range gpuCh {
		close(ch)
	}
	if submitErr != nil {
		return nil, submitErr
	}

	res.Elapsed = time.Since(start)
	for _, o := range res.Outcomes {
		if o.Err != nil {
			res.Failed++
		} else {
			res.Completed++
		}
		if o.Attempts > 1 {
			res.Retried++
		}
	}
	if secs := res.Elapsed.Seconds(); secs > 0 {
		res.Throughput = float64(res.Completed) / secs
	}
	s.schedMu.Lock()
	res.SchedStats = s.scheduler.Stats()
	s.schedMu.Unlock()
	return res, nil
}
