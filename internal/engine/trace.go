package engine

import (
	"encoding/json"
	"io"
)

// TraceRecord is one query's life cycle in a machine-readable trace.
type TraceRecord struct {
	ID          int64   `json:"id"`
	Queue       string  `json:"queue"`
	SubmittedAt float64 `json:"submitted_at"`
	FinishedAt  float64 `json:"finished_at"`
	LatencyS    float64 `json:"latency_s"`
	Deadline    float64 `json:"deadline"`
	MetDeadline bool    `json:"met_deadline"`
}

// WriteTrace streams the run's outcomes as JSON lines, one record per
// completed query in completion order — the raw material for external
// latency analysis or visualisation.
func (r *ModelResult) WriteTrace(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, o := range r.Outcomes {
		rec := TraceRecord{
			ID:          o.ID,
			Queue:       o.Queue.String(),
			SubmittedAt: o.SubmittedAt,
			FinishedAt:  o.FinishedAt,
			LatencyS:    o.FinishedAt - o.SubmittedAt,
			Deadline:    o.Deadline,
			MetDeadline: o.MetDeadline,
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}
