package engine

import (
	"fmt"
	"time"

	"hybridolap/internal/cube"
	"hybridolap/internal/dict"
	"hybridolap/internal/ingest"
	"hybridolap/internal/query"
	"hybridolap/internal/sched"
	"hybridolap/internal/table"
)

// Live returns the attached ingest store, or nil for a static system.
func (s *System) Live() *ingest.Store { return s.cfg.Live }

// Dicts returns the dictionary set queries translate against and group
// labels decode through: the live store's growing append dictionaries on
// a live system, the static table's frozen ones otherwise.
func (s *System) Dicts() *dict.Set { return s.dicts() }

// pin pins the current epoch snapshot, or returns nil for a static
// system. Every query path pins exactly once, at bind time; everything
// downstream (translation targets, stripe scans, the cube set) reads the
// pinned epoch, so concurrent ingest and compaction never shift a query's
// row set mid-flight.
func (s *System) pin() *table.Snapshot {
	if s.cfg.Live == nil {
		return nil
	}
	return s.cfg.Live.Current()
}

// dicts returns the dictionary set queries translate against: the live
// store's growing append dictionaries, or the static table's frozen ones.
func (s *System) dicts() *dict.Set {
	if s.cfg.Live != nil {
		return s.cfg.Live.Dicts()
	}
	return s.cfg.Table.Dicts()
}

// cubesAt returns the cube set that answers CPU queries at the given
// epoch: the snapshot's incrementally maintained set when one rides the
// epoch, otherwise the configured static set.
func (s *System) cubesAt(snap *table.Snapshot) *cube.Set {
	if snap != nil {
		if cs, ok := snap.Aux().(*cube.Set); ok && cs != nil {
			return cs
		}
	}
	return s.cfg.Cubes
}

// cpuCanAnswerWith is cpuCanAnswer against an explicit cube set.
func (s *System) cpuCanAnswerWith(q *query.Query, cs *cube.Set) bool {
	if q.GPUOnly() {
		return false
	}
	return q.Op == table.AggCount || q.Measure == cs.Measure()
}

// AnswerOnCPUAt answers a query from the cube set riding the given epoch
// snapshot (nil means the static configuration).
func (s *System) AnswerOnCPUAt(q *query.Query, snap *table.Snapshot) (table.ScanResult, error) {
	cs := s.cubesAt(snap)
	if cs == nil {
		return table.ScanResult{}, fmt.Errorf("engine: no cube set configured")
	}
	if !s.cpuCanAnswerWith(q, cs) {
		return table.ScanResult{}, fmt.Errorf("engine: query %d (measure %d, %d text predicates) cannot be answered from the cube set",
			q.ID, q.Measure, len(q.TextConds))
	}
	r := q.Resolution()
	box, empty, err := q.Box(cs.Schema(), r)
	if err != nil {
		return table.ScanResult{}, err
	}
	if empty {
		return table.ScanResult{}, nil
	}
	agg, _, err := cs.Aggregate(box, r, s.cfg.CPUThreads)
	if err != nil {
		return table.ScanResult{}, err
	}
	v, rows := aggValue(q.Op, agg)
	return table.ScanResult{Value: v, Rows: rows}, nil
}

// AnswerOnGPUAt answers a (translated) query on a GPU partition over the
// given epoch snapshot (nil means the device's static resident table).
func (s *System) AnswerOnGPUAt(q *query.Query, partition int, snap *table.Snapshot) (table.ScanResult, error) {
	parts := s.cfg.Device.Partitions()
	if partition < 0 || partition >= len(parts) {
		return table.ScanResult{}, fmt.Errorf("engine: partition %d out of range", partition)
	}
	req, empty, err := q.ToScanRequest(s.cfg.Table.Schema())
	if err != nil {
		return table.ScanResult{}, err
	}
	if empty {
		return table.ScanResult{}, nil
	}
	if snap != nil {
		return parts[partition].ExecuteSnapshot(snap, req)
	}
	return parts[partition].Execute(req)
}

// ReferenceAt answers a query by a sequential scan of the given epoch
// snapshot (nil means the static table) — the ground truth.
//
// olaplint:faultexempt: reference executor — the oracle every
// fault-injected path is checked against; injecting a dictionary fault
// here would fail the ground truth itself, not the system under test.
func (s *System) ReferenceAt(q *query.Query, snap *table.Snapshot) (table.ScanResult, error) {
	qq := q.Clone()
	if qq.NeedsTranslation() {
		if _, err := query.Translate(qq, s.dicts()); err != nil {
			return table.ScanResult{}, err
		}
	}
	req, empty, err := qq.ToScanRequest(s.cfg.Table.Schema())
	if err != nil {
		return table.ScanResult{}, err
	}
	if empty {
		return table.ScanResult{}, nil
	}
	if snap != nil {
		return table.ScanSnapshot(snap, req)
	}
	return table.Scan(s.cfg.Table, req)
}

// AnswerGroupsOnGPUAt answers a (translated) grouped query on a GPU
// partition over the given epoch snapshot.
func (s *System) AnswerGroupsOnGPUAt(q *query.Query, partition int, snap *table.Snapshot) ([]table.GroupRow, error) {
	parts := s.cfg.Device.Partitions()
	if partition < 0 || partition >= len(parts) {
		return nil, fmt.Errorf("engine: partition %d out of range", partition)
	}
	req, empty, err := q.ToGroupScanRequest(s.cfg.Table.Schema())
	if err != nil {
		return nil, err
	}
	if empty {
		return nil, nil
	}
	if snap != nil {
		return parts[partition].ExecuteGroupSnapshot(snap, req)
	}
	return parts[partition].ExecuteGroup(req)
}

// ReferenceGroupsAt answers a grouped query by a sequential scan of the
// given epoch snapshot.
//
// olaplint:faultexempt: reference executor — the oracle every
// fault-injected path is checked against; injecting a dictionary fault
// here would fail the ground truth itself, not the system under test.
func (s *System) ReferenceGroupsAt(q *query.Query, snap *table.Snapshot) ([]table.GroupRow, error) {
	qq := q.Clone()
	if qq.NeedsTranslation() {
		if _, err := query.Translate(qq, s.dicts()); err != nil {
			return nil, err
		}
	}
	req, empty, err := qq.ToGroupScanRequest(s.cfg.Table.Schema())
	if err != nil {
		return nil, err
	}
	if empty {
		return nil, nil
	}
	if snap != nil {
		return table.GroupScanSnapshot(snap, req)
	}
	return table.GroupScan(s.cfg.Table, req)
}

// Ingest forwards a batch to the live store and returns the first epoch
// in which it is visible.
func (s *System) Ingest(b *ingest.Batch) (*table.Snapshot, error) {
	if s.cfg.Live == nil {
		return nil, fmt.Errorf("engine: no live store attached")
	}
	return s.cfg.Live.Ingest(b)
}

// schedPacer routes compaction cost through the scheduler's CPU
// processing queue: Begin books the estimated merge time (so concurrent
// query placement sees the queue busy and T_Q stays honest) and the
// returned done feeds the actual-vs-estimated delta back, exactly like a
// query worker.
type schedPacer struct {
	sys *System
}

// compactionEstimate prices merging the given byte volume with the CPU
// aggregation model: a stripe merge is a sequential columnar copy, the
// same memory-bound work profile the model calibrates.
func (p *schedPacer) estimate(bytes int64) float64 {
	mb := float64(bytes) / (1 << 20)
	t, err := p.sys.cfg.Estimator.CPUTime(p.sys.cfg.CPUThreads, mb)
	if err != nil {
		// No CPU model configured: book zero time; pacing degrades to
		// counting jobs only.
		return 0
	}
	return t
}

func (p *schedPacer) Begin(bytes int64) (done func()) {
	est := p.estimate(bytes)
	p.sys.schedMu.Lock()
	p.sys.scheduler.SubmitMaintenance(0, est)
	p.sys.schedMu.Unlock()
	t0 := time.Now()
	return func() {
		act := time.Since(t0).Seconds()
		p.sys.schedMu.Lock()
		p.sys.scheduler.Feedback(sched.QueueRef{Kind: sched.QueueCPU}, act-est, 0)
		p.sys.schedMu.Unlock()
	}
}

// CompactionPacer returns an ingest.Pacer wired to this system's
// scheduler, for ingest.Config.Pacer.
func (s *System) CompactionPacer() ingest.Pacer {
	return &schedPacer{sys: s}
}
