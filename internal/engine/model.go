package engine

import (
	"fmt"
	"math/rand"
	"sort"

	"hybridolap/internal/query"
	"hybridolap/internal/sched"
	"hybridolap/internal/sim"
)

// Arrival describes how queries enter the system model.
type Arrival struct {
	// RatePerSec > 0 spaces arrivals 1/rate apart (an open system);
	// 0 submits everything at t=0 (a saturated batch, which is how a
	// sustained processing rate in queries/second is measured).
	RatePerSec float64
	// Jitter adds ±Jitter fraction of the spacing, drawn from Seed, to
	// avoid metronome artefacts. Ignored for batch and Poisson arrivals.
	Jitter float64
	// Poisson draws exponential inter-arrival gaps with mean 1/RatePerSec
	// instead of fixed spacing — the memoryless arrivals interactive OLAP
	// front-ends actually produce.
	Poisson bool
	// Seed derives the arrival stream's private random source. The zero
	// value is a valid, documented default: every run with Seed 0 (and
	// nil Rng) sees the identical arrival pattern.
	Seed int64
	// Rng, when set, overrides Seed as the arrival stream's source. Inject
	// one to share or sequence sources across experiment stages; RunModel
	// never touches the global math/rand state (enforced by the seededrand
	// analyzer), so olapbench tables are bit-reproducible either way.
	Rng *rand.Rand
}

// Noise perturbs modelled service times so the feedback loop has real work
// to do: actual = estimate × Bias × U[1−Amplitude, 1+Amplitude]. Bias (when
// non-zero) models systematic estimation error — the calibrated functions
// consistently under- or over-predicting — which is the error mode the
// paper's feedback correction exists for.
type Noise struct {
	Amplitude float64
	Bias      float64
	// Seed derives the noise source; 0 is the documented default stream.
	Seed int64
	// Rng, when set, overrides Seed (see Arrival.Rng).
	Rng *rand.Rand
}

// ModelOptions tunes RunModel.
type ModelOptions struct {
	Arrival Arrival
	Noise   Noise
}

// QueryOutcome records one query's modelled life cycle.
type QueryOutcome struct {
	ID          int64
	Queue       sched.QueueRef
	SubmittedAt float64
	FinishedAt  float64
	Deadline    float64
	MetDeadline bool
}

// ModelResult summarises a RunModel execution.
type ModelResult struct {
	Queries     int
	Completed   int
	MetDeadline int
	// MakespanSeconds is the virtual time at which the last query finished.
	MakespanSeconds float64
	// Throughput is Completed / MakespanSeconds — the paper's
	// "queries per second" processing rate.
	Throughput float64
	// MeanLatencySeconds averages submission→completion times.
	MeanLatencySeconds float64
	// P50/P95/P99LatencySeconds are latency percentiles over completions.
	P50LatencySeconds float64
	P95LatencySeconds float64
	P99LatencySeconds float64
	// Utilisation per queue name.
	Utilisation map[string]float64
	// SchedStats snapshots the scheduler's counters.
	SchedStats sched.Stats
	// Outcomes lists per-query records in completion order.
	Outcomes []QueryOutcome
}

// RunModel plays a query stream through the system model on virtual time.
// Each query is estimated, scheduled with the configured policy, and
// serviced by per-partition FIFO servers whose service times are the
// (optionally noised) model estimates. Measured-vs-estimated feedback is
// applied at each completion, as in the paper.
func (s *System) RunModel(queries []*query.Query, opts ModelOptions) (*ModelResult, error) {
	var loop sim.Loop
	cpuSrv := sim.NewServer(&loop, "cpu")
	transSrv := sim.NewServer(&loop, "trans")
	gpuSrv := make([]*sim.Server, len(s.widths))
	for i, w := range s.widths {
		gpuSrv[i] = sim.NewServer(&loop, fmt.Sprintf("gpu%d-%dsm", i, w))
	}

	noiseRng := opts.Noise.Rng
	if noiseRng == nil {
		noiseRng = rand.New(rand.NewSource(opts.Noise.Seed))
	}
	bias := opts.Noise.Bias
	if bias <= 0 {
		bias = 1
	}
	noisy := func(est float64) float64 {
		f := bias
		if opts.Noise.Amplitude > 0 {
			f *= 1 + opts.Noise.Amplitude*(2*noiseRng.Float64()-1)
		}
		if f < 0.01 {
			f = 0.01
		}
		return est * f
	}

	arrRng := opts.Arrival.Rng
	if arrRng == nil {
		arrRng = rand.New(rand.NewSource(opts.Arrival.Seed))
	}
	poissonClock := 0.0
	arrivalAt := func(i int) float64 {
		if opts.Arrival.RatePerSec <= 0 {
			return 0
		}
		if opts.Arrival.Poisson {
			poissonClock += arrRng.ExpFloat64() / opts.Arrival.RatePerSec
			return poissonClock
		}
		base := float64(i) / opts.Arrival.RatePerSec
		if opts.Arrival.Jitter > 0 {
			base += (opts.Arrival.Jitter / opts.Arrival.RatePerSec) * (2*arrRng.Float64() - 1)
			if base < 0 {
				base = 0
			}
		}
		return base
	}

	res := &ModelResult{Queries: len(queries), Utilisation: make(map[string]float64)}
	var firstErr error

	for i, q := range queries {
		q := q
		at := sim.FromSeconds(arrivalAt(i))
		err := loop.Schedule(at, func(now sim.Time) {
			if firstErr != nil {
				return
			}
			nowS := sim.Seconds(now)
			est, err := s.Estimate(q)
			if err != nil {
				firstErr = fmt.Errorf("engine: estimating query %d: %w", q.ID, err)
				return
			}
			s.schedMu.Lock()
			d, err := s.scheduler.Submit(nowS, est)
			s.schedMu.Unlock()
			if err != nil {
				firstErr = fmt.Errorf("engine: scheduling query %d: %w", q.ID, err)
				return
			}

			finish := func(f sim.Time, estSvc, actSvc float64, queue sched.QueueRef) {
				fs := sim.Seconds(f)
				s.schedMu.Lock()
				s.scheduler.Feedback(queue, actSvc-estSvc, fs)
				s.schedMu.Unlock()
				res.Completed++
				met := fs <= d.Deadline
				if met {
					res.MetDeadline++
				}
				res.MeanLatencySeconds += fs - nowS
				if fs > res.MakespanSeconds {
					res.MakespanSeconds = fs
				}
				res.Outcomes = append(res.Outcomes, QueryOutcome{
					ID: q.ID, Queue: queue, SubmittedAt: nowS,
					FinishedAt: fs, Deadline: d.Deadline, MetDeadline: met,
				})
			}

			switch d.Queue.Kind {
			case sched.QueueCPU:
				estSvc := est.CPUSeconds
				actSvc := noisy(estSvc)
				cpuSrv.Submit(sim.FromSeconds(actSvc), func(f sim.Time) {
					finish(f, estSvc, actSvc, d.Queue)
				})
			case sched.QueueGPU:
				i := d.Queue.Index
				estSvc := est.GPUSeconds[i]
				actSvc := noisy(estSvc)
				var gate sim.Time
				if est.NeedsTranslation {
					estTr := est.TransSeconds
					actTr := noisy(estTr)
					// The dedicated design runs translation on its own
					// partition; the ablation serialises it onto the CPU
					// processing server, where it contends with cube
					// aggregation.
					srv := transSrv
					transQueue := sched.QueueRef{Kind: sched.QueueCPU, Index: -1}
					if s.cfg.Sched.Translation == sched.TransOnCPUQueue {
						srv = cpuSrv
						transQueue = sched.QueueRef{Kind: sched.QueueCPU}
					}
					gate = srv.Submit(sim.FromSeconds(actTr), func(f sim.Time) {
						s.schedMu.Lock()
						s.scheduler.Feedback(transQueue, actTr-estTr, sim.Seconds(f))
						s.schedMu.Unlock()
					})
				}
				gpuSrv[i].SubmitAfter(gate, sim.FromSeconds(actSvc), func(f sim.Time) {
					finish(f, estSvc, actSvc, d.Queue)
				})
			}
		})
		if err != nil {
			return nil, fmt.Errorf("engine: scheduling arrival %d: %w", i, err)
		}
	}

	loop.Run()
	if firstErr != nil {
		return nil, firstErr
	}

	if res.Completed > 0 {
		res.MeanLatencySeconds /= float64(res.Completed)
		lats := make([]float64, 0, len(res.Outcomes))
		for _, o := range res.Outcomes {
			lats = append(lats, o.FinishedAt-o.SubmittedAt)
		}
		sort.Float64s(lats)
		pct := func(p float64) float64 {
			i := int(p * float64(len(lats)-1))
			return lats[i]
		}
		res.P50LatencySeconds = pct(0.50)
		res.P95LatencySeconds = pct(0.95)
		res.P99LatencySeconds = pct(0.99)
	}
	if res.MakespanSeconds > 0 {
		res.Throughput = float64(res.Completed) / res.MakespanSeconds
	}
	res.Utilisation["cpu"] = cpuSrv.Utilisation()
	res.Utilisation["trans"] = transSrv.Utilisation()
	for i, srv := range gpuSrv {
		res.Utilisation[fmt.Sprintf("gpu[%d]", i)] = srv.Utilisation()
	}
	s.schedMu.Lock()
	res.SchedStats = s.scheduler.Stats()
	s.schedMu.Unlock()
	return res, nil
}
