// Package tpcds generates deterministic synthetic star-schema data shaped
// like the TPC-DS fact tables the paper uses to evaluate its text-to-
// integer translation ("Fact tables from renowned TPC-DS benchmark have
// been used for evaluation of the translation performance", Sec. I).
//
// The real benchmark data is license-gated tooling output; this package
// substitutes a combinatorial generator that produces the property the
// translation layer actually cares about: text columns with controllable
// distinct-value counts (dictionary lengths D_L) and realistic string
// shapes (names, cities, brands, categories).
package tpcds

import "fmt"

// Word pools used combinatorially. Sizes multiply, so a handful of pools
// generate millions of distinct realistic strings.
var (
	firstNames = []string{
		"James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael",
		"Linda", "David", "Elizabeth", "William", "Barbara", "Richard",
		"Susan", "Joseph", "Jessica", "Thomas", "Sarah", "Charles", "Karen",
		"Christopher", "Lisa", "Daniel", "Nancy", "Matthew", "Betty",
		"Anthony", "Margaret", "Mark", "Sandra", "Donald", "Ashley",
	}
	lastNames = []string{
		"Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
		"Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
		"Wilson", "Anderson", "Thomas", "Taylor", "Moore", "Jackson",
		"Martin", "Lee", "Perez", "Thompson", "White", "Harris", "Sanchez",
		"Clark", "Ramirez", "Lewis", "Robinson", "Walker", "Young",
	}
	cityStems = []string{
		"Spring", "River", "Oak", "Maple", "Cedar", "Pine", "Lake", "Hill",
		"Fair", "Green", "Pleasant", "Union", "Salem", "George", "Clinton",
		"Madison", "Franklin", "Liberty", "Center", "Mount", "Glen", "Ash",
		"Birch", "Clear", "Stone", "Bridge", "Harbor", "North", "West",
		"East",
	}
	citySuffixes = []string{
		"field", "town", "ville", "burg", "port", "wood", "dale", "view",
		"ford", "haven", "side", "crest",
	}
	stateAbbrs = []string{
		"AL", "AK", "AZ", "AR", "CA", "CO", "CT", "DE", "FL", "GA", "HI",
		"ID", "IL", "IN", "IA", "KS", "KY", "LA", "ME", "MD", "MA", "MI",
		"MN", "MS", "MO", "MT", "NE", "NV", "NH", "NJ", "NM", "NY", "NC",
		"ND", "OH", "OK", "OR", "PA", "RI", "SC", "SD", "TN", "TX", "UT",
		"VT", "VA", "WA", "WV", "WI", "WY",
	}
	brandAdjectives = []string{
		"amalg", "edu pack", "export", "import", "scholar", "brand",
		"corp", "max", "uni", "ultra", "prime", "value",
	}
	categories = []string{
		"Books", "Children", "Electronics", "Home", "Jewelry", "Men",
		"Music", "Shoes", "Sports", "Women",
	}
	storeWords = []string{
		"able", "bar", "cally", "eing", "ese", "anti", "ought", "pri",
	}
)

// CustomerName returns the i-th synthetic "First Last" name; the space of
// distinct names is len(firstNames)*len(lastNames)*numbered suffixes, so
// any requested dictionary size is reachable.
func CustomerName(i int) string {
	f := firstNames[i%len(firstNames)]
	l := lastNames[(i/len(firstNames))%len(lastNames)]
	n := i / (len(firstNames) * len(lastNames))
	if n == 0 {
		return f + " " + l
	}
	return fmt.Sprintf("%s %s %d", f, l, n)
}

// CityName returns the i-th synthetic city name.
func CityName(i int) string {
	s := cityStems[i%len(cityStems)]
	x := citySuffixes[(i/len(cityStems))%len(citySuffixes)]
	n := i / (len(cityStems) * len(citySuffixes))
	if n == 0 {
		return s + x
	}
	return fmt.Sprintf("%s%s %d", s, x, n)
}

// StateName returns the i-th state abbreviation (wrapping with a numeric
// tag past 50, for oversized dictionaries).
func StateName(i int) string {
	if i < len(stateAbbrs) {
		return stateAbbrs[i]
	}
	return fmt.Sprintf("%s%d", stateAbbrs[i%len(stateAbbrs)], i/len(stateAbbrs))
}

// BrandName returns the i-th TPC-DS-style brand string, e.g.
// "amalgexport #3".
func BrandName(i int) string {
	a := brandAdjectives[i%len(brandAdjectives)]
	b := brandAdjectives[(i/len(brandAdjectives))%len(brandAdjectives)]
	return fmt.Sprintf("%s%s #%d", a, b, i/(len(brandAdjectives)*len(brandAdjectives))+1)
}

// CategoryName returns the i-th category.
func CategoryName(i int) string {
	if i < len(categories) {
		return categories[i]
	}
	return fmt.Sprintf("%s %d", categories[i%len(categories)], i/len(categories))
}

// StoreName returns the i-th TPC-DS-style store name, e.g. "able ought #4".
func StoreName(i int) string {
	a := storeWords[i%len(storeWords)]
	b := storeWords[(i/len(storeWords))%len(storeWords)]
	return fmt.Sprintf("%s %s #%d", a, b, i/(len(storeWords)*len(storeWords))+1)
}

// Pool materialises the first n values of a name function.
func Pool(n int, f func(int) string) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = f(i)
	}
	return out
}
