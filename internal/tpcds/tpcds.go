package tpcds

import (
	"fmt"

	"hybridolap/internal/dict"
	"hybridolap/internal/table"
)

// Spec sizes a synthetic store_sales-like fact table.
type Spec struct {
	// Rows is the fact-table row count.
	Rows int
	// Seed makes generation reproducible.
	Seed int64
	// Customers, Cities, Brands, Stores set the distinct-value counts of
	// the text columns — the dictionary lengths D_L that drive translation
	// cost. Zero values pick TPC-DS scale-1-ish defaults.
	Customers, Cities, Brands, Stores int
}

func (s *Spec) defaults() {
	if s.Customers == 0 {
		s.Customers = 100_000
	}
	if s.Cities == 0 {
		s.Cities = 1_000
	}
	if s.Brands == 0 {
		s.Brands = 500
	}
	if s.Stores == 0 {
		s.Stores = 200
	}
}

// Schema returns the store_sales-like schema: a date hierarchy
// (year→quarter→month→day), a store geography (region→state→store) and an
// item hierarchy (category→class→item), with sales measures and four text
// columns.
func Schema() table.Schema {
	return table.Schema{
		Dimensions: []table.DimensionSpec{
			{Name: "date", Levels: []table.LevelSpec{
				{Name: "year", Cardinality: 5},
				{Name: "quarter", Cardinality: 20},
				{Name: "month", Cardinality: 60},
				{Name: "day", Cardinality: 1800},
			}},
			{Name: "store_geo", Levels: []table.LevelSpec{
				{Name: "region", Cardinality: 4},
				{Name: "state", Cardinality: 48},
				{Name: "store", Cardinality: 192},
			}},
			{Name: "item", Levels: []table.LevelSpec{
				{Name: "category", Cardinality: 10},
				{Name: "class", Cardinality: 80},
				{Name: "sku", Cardinality: 1600},
			}},
		},
		Measures: []table.MeasureSpec{
			{Name: "quantity"},
			{Name: "net_paid"},
			{Name: "net_profit"},
		},
		Texts: []table.TextSpec{
			{Name: "customer_name"},
			{Name: "customer_city"},
			{Name: "item_brand"},
			{Name: "store_name"},
		},
	}
}

// Generate builds the synthetic fact table for a spec.
func Generate(spec Spec) (*table.FactTable, error) {
	spec.defaults()
	if spec.Rows < 0 {
		return nil, fmt.Errorf("tpcds: negative row count")
	}
	return table.Generate(table.GenSpec{
		Schema: Schema(),
		Rows:   spec.Rows,
		Seed:   spec.Seed,
		TextPools: [][]string{
			Pool(spec.Customers, CustomerName),
			Pool(spec.Cities, CityName),
			Pool(spec.Brands, BrandName),
			Pool(spec.Stores, StoreName),
		},
		MeasureMax: 500,
	})
}

// Dictionary builds a standalone dictionary of exactly n realistic values
// using the given namer — the corpus for the Fig. 9 dictionary-search
// sweep.
func Dictionary(n int, kind dict.Kind, namer func(int) string) (dict.Dictionary, error) {
	b := dict.NewBuilder()
	for i := 0; b.Len() < n; i++ {
		if _, err := b.Add(namer(i)); err != nil {
			return nil, err
		}
	}
	d, _, err := b.Build(kind)
	return d, err
}
