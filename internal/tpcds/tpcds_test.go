package tpcds

import (
	"testing"

	"hybridolap/internal/dict"
)

func TestNameFunctionsDistinct(t *testing.T) {
	cases := []struct {
		name  string
		f     func(int) string
		count int
	}{
		{"CustomerName", CustomerName, 5000},
		{"CityName", CityName, 2000},
		{"StateName", StateName, 300},
		{"BrandName", BrandName, 1000},
		{"CategoryName", CategoryName, 100},
		{"StoreName", StoreName, 500},
	}
	for _, c := range cases {
		seen := make(map[string]bool, c.count)
		for i := 0; i < c.count; i++ {
			s := c.f(i)
			if s == "" {
				t.Fatalf("%s(%d) empty", c.name, i)
			}
			if seen[s] {
				t.Fatalf("%s(%d) = %q repeats", c.name, i, s)
			}
			seen[s] = true
		}
	}
}

func TestNameFunctionsDeterministic(t *testing.T) {
	for i := 0; i < 100; i++ {
		if CustomerName(i) != CustomerName(i) || StoreName(i) != StoreName(i) {
			t.Fatal("name functions not deterministic")
		}
	}
	if CustomerName(0) != "James Smith" {
		t.Fatalf("CustomerName(0) = %q", CustomerName(0))
	}
	if StateName(3) != "AR" {
		t.Fatalf("StateName(3) = %q", StateName(3))
	}
}

func TestPool(t *testing.T) {
	p := Pool(10, CityName)
	if len(p) != 10 || p[0] != CityName(0) || p[9] != CityName(9) {
		t.Fatalf("Pool = %v", p)
	}
}

func TestSchemaValid(t *testing.T) {
	s := Schema()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// 10 dim-level columns + 3 measures + 4 texts.
	if got := s.TotalColumns(); got != 17 {
		t.Fatalf("TotalColumns = %d, want 17", got)
	}
}

func TestGenerate(t *testing.T) {
	ft, err := Generate(Spec{Rows: 2000, Seed: 3, Customers: 500, Cities: 50, Brands: 20, Stores: 10})
	if err != nil {
		t.Fatal(err)
	}
	if ft.Rows() != 2000 {
		t.Fatalf("rows = %d", ft.Rows())
	}
	// Dictionary lengths are bounded by the pool sizes (2000 draws from a
	// 500-name pool will not hit every value, but must never exceed it).
	d := ft.Dicts()
	if got := d.DictLen("customer_name"); got == 0 || got > 500 {
		t.Fatalf("customer_name D_L = %d", got)
	}
	if got := d.DictLen("customer_city"); got == 0 || got > 50 {
		t.Fatalf("customer_city D_L = %d", got)
	}
	// Deterministic regeneration.
	ft2, err := Generate(Spec{Rows: 2000, Seed: 3, Customers: 500, Cities: 50, Brands: 20, Stores: 10})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 50; r++ {
		if ft.TextColumn(0)[r] != ft2.TextColumn(0)[r] {
			t.Fatal("generation not deterministic")
		}
	}
	if _, err := Generate(Spec{Rows: -1}); err == nil {
		t.Fatal("negative rows accepted")
	}
}

func TestGenerateDefaults(t *testing.T) {
	ft, err := Generate(Spec{Rows: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ft.Rows() != 100 {
		t.Fatalf("rows = %d", ft.Rows())
	}
}

func TestDictionaryExactSize(t *testing.T) {
	for _, n := range []int{1, 10, 1000} {
		d, err := Dictionary(n, dict.KindSorted, CityName)
		if err != nil {
			t.Fatal(err)
		}
		if d.Len() != n {
			t.Fatalf("Dictionary(%d) has %d entries", n, d.Len())
		}
	}
	// Every stored value must be findable.
	d, _ := Dictionary(100, dict.KindHash, CustomerName)
	for i := 0; i < 100; i++ {
		if _, ok := d.Lookup(CustomerName(i)); !ok {
			t.Fatalf("CustomerName(%d) missing from dictionary", i)
		}
	}
}
