package perfmodel

import (
	"fmt"
	"math"
)

// Point is one measurement: x (size, fraction, length…) and y (seconds).
type Point struct {
	X, Y float64
}

// Eps is the relative tolerance for floating-point comparisons in the
// fitting code. Fitted slopes, intercepts and sums of squares are
// least-squares outputs that differ in the last ulps between platforms;
// exact ==/!= against them is meaningless (and banned by the floateq
// analyzer), so degeneracy checks compare magnitudes against Eps-scaled
// bounds instead.
const Eps = 1e-12

// almostZero reports whether x is negligible relative to scale (clamped
// to at least 1 so tiny scales do not make everything significant).
func almostZero(x, scale float64) bool {
	if scale < 1 {
		scale = 1
	}
	return math.Abs(x) <= Eps*scale
}

// FitLinear computes the least-squares line through the points.
func FitLinear(pts []Point) (Linear, error) {
	if len(pts) < 2 {
		return Linear{}, fmt.Errorf("perfmodel: need >= 2 points, got %d", len(pts))
	}
	var sx, sy, sxx, sxy float64
	n := float64(len(pts))
	for _, p := range pts {
		sx += p.X
		sy += p.Y
		sxx += p.X * p.X
		sxy += p.X * p.Y
	}
	den := n*sxx - sx*sx
	if almostZero(den, n*sxx+sx*sx) {
		return Linear{}, fmt.Errorf("perfmodel: degenerate x values")
	}
	slope := (n*sxy - sx*sy) / den
	return Linear{Slope: slope, Intercept: (sy - slope*sx) / n}, nil
}

// FitLinearThroughOrigin fits y = Slope·x (the shape of P_DICT, Fig. 9).
func FitLinearThroughOrigin(pts []Point) (Linear, error) {
	if len(pts) < 1 {
		return Linear{}, fmt.Errorf("perfmodel: need >= 1 point")
	}
	var sxx, sxy float64
	for _, p := range pts {
		sxx += p.X * p.X
		sxy += p.X * p.Y
	}
	if almostZero(sxx, 1) {
		return Linear{}, fmt.Errorf("perfmodel: degenerate x values")
	}
	return Linear{Slope: sxy / sxx}, nil
}

// FitPowerLaw fits y = Coef·x^Exp by least squares in log-log space (the
// shape of f_A in Figs. 4 and 5). All points must have positive x and y.
func FitPowerLaw(pts []Point) (PowerLaw, error) {
	logs := make([]Point, 0, len(pts))
	for _, p := range pts {
		if p.X <= 0 || p.Y <= 0 {
			return PowerLaw{}, fmt.Errorf("perfmodel: power-law fit needs positive points, got (%v,%v)", p.X, p.Y)
		}
		logs = append(logs, Point{X: math.Log(p.X), Y: math.Log(p.Y)})
	}
	l, err := FitLinear(logs)
	if err != nil {
		return PowerLaw{}, err
	}
	return PowerLaw{Coef: math.Exp(l.Intercept), Exp: l.Slope}, nil
}

// RSquared returns the coefficient of determination of model predictions
// f(x) against the measured y values.
func RSquared(pts []Point, f func(float64) float64) float64 {
	if len(pts) == 0 {
		return 0
	}
	var mean float64
	for _, p := range pts {
		mean += p.Y
	}
	mean /= float64(len(pts))
	var ssTot, ssRes float64
	for _, p := range pts {
		d := p.Y - mean
		ssTot += d * d
		r := p.Y - f(p.X)
		ssRes += r * r
	}
	if almostZero(ssTot, mean*mean) {
		if almostZero(ssRes, mean*mean) {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}

// FitCPUModel derives a two-piece CPU model from measurements, splitting at
// breakMB exactly as the paper does ("the full range is divided into Range
// A ... and Range B ... where each range uses a different estimation
// function ... chosen based on best fit", Sec. III-D). Each side needs at
// least two points.
func FitCPUModel(pts []Point, breakMB float64) (CPUModel, error) {
	var a, b []Point
	for _, p := range pts {
		if p.X < breakMB {
			a = append(a, p)
		} else {
			b = append(b, p)
		}
	}
	pl, err := FitPowerLaw(a)
	if err != nil {
		return CPUModel{}, fmt.Errorf("perfmodel: range A fit: %w", err)
	}
	ln, err := FitLinear(b)
	if err != nil {
		return CPUModel{}, fmt.Errorf("perfmodel: range B fit: %w", err)
	}
	return CPUModel{BreakMB: breakMB, A: pl, B: ln}, nil
}

// FitGPUModel derives P_GPU for one partition width from (C/C_TOT, time)
// measurements, matching how Fig. 8's lines were produced.
func FitGPUModel(pts []Point) (GPUModel, error) {
	return FitLinear(pts)
}

// FitDictModel derives P_DICT from (dictionary length, per-lookup time)
// measurements: a line through the origin, as in Fig. 9.
func FitDictModel(pts []Point) (DictModel, error) {
	l, err := FitLinearThroughOrigin(pts)
	if err != nil {
		return DictModel{}, err
	}
	return DictModel{SecondsPerEntry: l.Slope}, nil
}
