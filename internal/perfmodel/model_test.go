package perfmodel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func close(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPaperCPUModelsMatchPublishedValues(t *testing.T) {
	// Eq. (7): f_A|4T(100 MB) = 1e-4 * 100^0.9341.
	want := 1e-4 * math.Pow(100, 0.9341)
	if got := PaperCPU4T.Eval(100); !close(got, want, 1e-12) {
		t.Fatalf("4T A eval = %v, want %v", got, want)
	}
	// Eq. (7): f_B|4T(1024 MB) = 5e-5*1024 + 0.0096.
	if got := PaperCPU4T.Eval(1024); !close(got, 5e-5*1024+0.0096, 1e-12) {
		t.Fatalf("4T B eval = %v", got)
	}
	// Eq. (10): 8T at 32 GB = 4e-5*32768 + 0.0146 ≈ 1.325 s.
	if got := PaperCPU8T.Eval(32768); !close(got, 1.3253, 1e-3) {
		t.Fatalf("8T 32GB eval = %v, want ~1.325", got)
	}
	// Zero and negative sizes cost nothing.
	if PaperCPU8T.Eval(0) != 0 || PaperCPU8T.Eval(-5) != 0 {
		t.Fatal("non-positive size should cost 0")
	}
}

func TestCPUModelPieceSelection(t *testing.T) {
	m := CPUModel{BreakMB: 512, A: PowerLaw{Coef: 1, Exp: 1}, B: Linear{Slope: 0, Intercept: 99}}
	if got := m.Eval(511); got != 511 {
		t.Fatalf("below break used wrong piece: %v", got)
	}
	if got := m.Eval(512); got != 99 {
		t.Fatalf("at break used wrong piece: %v", got)
	}
}

func TestCPUModelFasterWithMoreThreads(t *testing.T) {
	// The published models must preserve the paper's ordering: at every
	// size, 8T <= 4T <= 1T.
	for _, mb := range []float64{1, 10, 100, 511, 512, 1024, 32768} {
		t1 := PaperCPU1T.Eval(mb)
		t4 := PaperCPU4T.Eval(mb)
		t8 := PaperCPU8T.Eval(mb)
		if !(t8 <= t4 && t4 <= t1) {
			t.Fatalf("thread ordering violated at %v MB: 1T=%v 4T=%v 8T=%v", mb, t1, t4, t8)
		}
	}
}

func TestPaperGPUModels(t *testing.T) {
	// Eq. (14): full-table scan (C/C_TOT = 1) on 1 SM.
	if got := PaperGPU1SM.Eval(1); !close(got, 0.0288, 1e-9) {
		t.Fatalf("1SM full scan = %v, want 0.0288", got)
	}
	// Wider partitions are faster at every fraction.
	for _, frac := range []float64{0, 0.25, 0.5, 1} {
		t1 := PaperGPU1SM.Eval(frac)
		t2 := PaperGPU2SM.Eval(frac)
		t4 := PaperGPU4SM.Eval(frac)
		t14 := PaperGPU14SM.Eval(frac)
		if !(t14 < t4 && t4 < t2 && t2 < t1) {
			t.Fatalf("SM ordering violated at frac %v", frac)
		}
	}
	if len(PaperGPUModels()) != 4 {
		t.Fatal("PaperGPUModels should expose 1/2/4/14 SM")
	}
}

func TestDictModel(t *testing.T) {
	// Eq. (17): 1M-entry dictionary costs 13.8 ms per lookup.
	if got := PaperDict.Eval(1_000_000); !close(got, 0.0138, 1e-9) {
		t.Fatalf("P_DICT(1e6) = %v, want 0.0138", got)
	}
	if PaperDict.Eval(0) != 0 || PaperDict.Eval(-3) != 0 {
		t.Fatal("empty dictionary should cost 0")
	}
	// Eq. (18): the bound sums per-column lookups.
	got := PaperDict.TransTime([]int{1000, 2000, 3000})
	if !close(got, PaperDict.Eval(6000), 1e-15) {
		t.Fatalf("TransTime = %v", got)
	}
	if PaperDict.TransTime(nil) != 0 {
		t.Fatal("no pending translations should cost 0")
	}
}

func TestEstimator(t *testing.T) {
	e := PaperEstimator()
	if _, err := e.CPUTime(4, 100); err != nil {
		t.Fatal(err)
	}
	if _, err := e.CPUTime(3, 100); err == nil {
		t.Fatal("unknown thread count accepted")
	}
	got, err := e.GPUTime(4, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !close(got, 0.0008*0.5+0.0065, 1e-12) {
		t.Fatalf("GPUTime = %v", got)
	}
	if _, err := e.GPUTime(3, 1, 6); err == nil {
		t.Fatal("unknown SM count accepted")
	}
	if _, err := e.GPUTime(1, 1, 0); err == nil {
		t.Fatal("zero totalCols accepted")
	}
	if got := e.TransTime([]int{1_000_000}); !close(got, 0.0138, 1e-9) {
		t.Fatalf("TransTime = %v", got)
	}
}

func TestBandwidthMBs(t *testing.T) {
	if got := BandwidthMBs(1024, 2); got != 512 {
		t.Fatalf("BandwidthMBs = %v", got)
	}
	if BandwidthMBs(100, 0) != 0 {
		t.Fatal("zero time should yield 0 bandwidth")
	}
}

func TestFitLinearExact(t *testing.T) {
	pts := []Point{{0, 1}, {1, 3}, {2, 5}, {3, 7}}
	l, err := FitLinear(pts)
	if err != nil {
		t.Fatal(err)
	}
	if !close(l.Slope, 2, 1e-12) || !close(l.Intercept, 1, 1e-12) {
		t.Fatalf("fit = %+v", l)
	}
	if r := RSquared(pts, l.Eval); !close(r, 1, 1e-12) {
		t.Fatalf("R² = %v", r)
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]Point{{1, 1}}); err == nil {
		t.Fatal("single point accepted")
	}
	if _, err := FitLinear([]Point{{2, 1}, {2, 5}}); err == nil {
		t.Fatal("degenerate x accepted")
	}
}

func TestFitLinearThroughOrigin(t *testing.T) {
	pts := []Point{{1, 2.1}, {2, 3.9}, {3, 6.1}}
	l, err := FitLinearThroughOrigin(pts)
	if err != nil {
		t.Fatal(err)
	}
	if !close(l.Slope, 2, 0.05) || l.Intercept != 0 {
		t.Fatalf("fit = %+v", l)
	}
	if _, err := FitLinearThroughOrigin(nil); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := FitLinearThroughOrigin([]Point{{0, 1}}); err == nil {
		t.Fatal("degenerate input accepted")
	}
}

func TestFitPowerLawExact(t *testing.T) {
	truth := PowerLaw{Coef: 1e-4, Exp: 0.9341}
	var pts []Point
	for _, x := range []float64{1, 4, 16, 64, 256} {
		pts = append(pts, Point{x, truth.Eval(x)})
	}
	got, err := FitPowerLaw(pts)
	if err != nil {
		t.Fatal(err)
	}
	if !close(got.Coef, truth.Coef, 1e-9) || !close(got.Exp, truth.Exp, 1e-9) {
		t.Fatalf("fit = %+v, want %+v", got, truth)
	}
	if _, err := FitPowerLaw([]Point{{0, 1}, {1, 1}}); err == nil {
		t.Fatal("non-positive x accepted")
	}
	if _, err := FitPowerLaw([]Point{{1, 0}, {2, 1}}); err == nil {
		t.Fatal("non-positive y accepted")
	}
}

func TestFitCPUModelRecoversPaperModel(t *testing.T) {
	// Sample the published 4T model, fit, and recover the coefficients —
	// the round trip the paper's own benchmarking performed.
	var pts []Point
	for mb := 1.0; mb <= 32768; mb *= 2 {
		pts = append(pts, Point{mb, PaperCPU4T.Eval(mb)})
	}
	m, err := FitCPUModel(pts, PaperBreakMB)
	if err != nil {
		t.Fatal(err)
	}
	if !close(m.A.Exp, 0.9341, 1e-6) || !close(m.A.Coef, 1e-4, 1e-9) {
		t.Fatalf("range A fit = %+v", m.A)
	}
	if !close(m.B.Slope, 5e-5, 1e-12) || !close(m.B.Intercept, 0.0096, 1e-6) {
		t.Fatalf("range B fit = %+v", m.B)
	}
	// Predictions agree over the whole range.
	for mb := 1.0; mb <= 32768; mb *= 3 {
		if !close(m.Eval(mb), PaperCPU4T.Eval(mb), 1e-6*math.Max(1, PaperCPU4T.Eval(mb))) {
			t.Fatalf("fit diverges at %v MB", mb)
		}
	}
}

func TestFitCPUModelNeedsBothRanges(t *testing.T) {
	pts := []Point{{1, 1}, {2, 2}, {4, 3}} // all below break
	if _, err := FitCPUModel(pts, 512); err == nil {
		t.Fatal("missing range B accepted")
	}
	pts = []Point{{1024, 1}, {2048, 2}} // all above break
	if _, err := FitCPUModel(pts, 512); err == nil {
		t.Fatal("missing range A accepted")
	}
}

func TestFitGPUModelRecoversPaperModel(t *testing.T) {
	var pts []Point
	for _, frac := range []float64{0.1, 0.25, 0.5, 0.75, 1.0} {
		pts = append(pts, Point{frac, PaperGPU2SM.Eval(frac)})
	}
	m, err := FitGPUModel(pts)
	if err != nil {
		t.Fatal(err)
	}
	if !close(m.Slope, 0.0015, 1e-9) || !close(m.Intercept, 0.013, 1e-9) {
		t.Fatalf("fit = %+v", m)
	}
}

func TestFitDictModelRecoversPaperModel(t *testing.T) {
	var pts []Point
	for _, n := range []float64{1e3, 1e4, 1e5, 1e6} {
		pts = append(pts, Point{n, PaperDict.Eval(int(n))})
	}
	m, err := FitDictModel(pts)
	if err != nil {
		t.Fatal(err)
	}
	if !close(m.SecondsPerEntry, 0.0138e-6, 1e-15) {
		t.Fatalf("fit = %+v", m)
	}
}

// Property: FitLinear recovers arbitrary lines exactly (within fp error)
// from noise-free samples, and R² is 1.
func TestFitLinearProperty(t *testing.T) {
	f := func(slopeRaw, interRaw int16) bool {
		slope := float64(slopeRaw) / 100
		inter := float64(interRaw) / 100
		truth := Linear{Slope: slope, Intercept: inter}
		var pts []Point
		for x := 0.0; x < 10; x++ {
			pts = append(pts, Point{x, truth.Eval(x)})
		}
		got, err := FitLinear(pts)
		if err != nil {
			return false
		}
		return close(got.Slope, slope, 1e-9) && close(got.Intercept, inter, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: fitting noisy data still yields high R² and approximate
// coefficients — the regime real calibration operates in.
func TestFitNoisyData(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	truth := Linear{Slope: 0.003, Intercept: 0.0258}
	var pts []Point
	for i := 0; i < 100; i++ {
		x := rng.Float64()
		y := truth.Eval(x) * (1 + 0.02*(rng.Float64()-0.5))
		pts = append(pts, Point{x, y})
	}
	got, err := FitLinear(pts)
	if err != nil {
		t.Fatal(err)
	}
	if !close(got.Slope, truth.Slope, 3e-4) || !close(got.Intercept, truth.Intercept, 3e-4) {
		t.Fatalf("noisy fit = %+v", got)
	}
	if r := RSquared(pts, got.Eval); r < 0.95 {
		t.Fatalf("R² = %v", r)
	}
}

func TestRSquaredEdgeCases(t *testing.T) {
	if RSquared(nil, func(float64) float64 { return 0 }) != 0 {
		t.Fatal("empty points should give 0")
	}
	flat := []Point{{1, 5}, {2, 5}}
	if RSquared(flat, func(float64) float64 { return 5 }) != 1 {
		t.Fatal("perfect flat fit should give 1")
	}
	if RSquared(flat, func(float64) float64 { return 6 }) != 0 {
		t.Fatal("imperfect flat fit should give 0")
	}
}
