package perfmodel

// LinkModel prices simulated network movement between cluster nodes the
// same way the GPU models price kernel time: a fixed per-message latency
// plus bytes over bandwidth. Scans are bandwidth-bound (Sirin &
// Ailamaki), so a placement cost model that ignores bytes moved would
// systematically undercharge remote execution; the coordinator folds
// TransferSeconds into its deadline estimates via Estimates.LinkSeconds.
// The zero value is a free, infinitely fast link (TransferSeconds
// returns 0), which degrades cluster planning to movement-blind costs.
type LinkModel struct {
	// LatencySeconds is the fixed per-transfer cost (connection setup,
	// request round-trip), paid once per message regardless of size.
	LatencySeconds float64
	// BandwidthMBps is the sustained link bandwidth in MiB per second.
	BandwidthMBps float64
}

// TransferSeconds returns the simulated time to move the given byte
// volume over the link. Zero or negative byte counts cost nothing — no
// message is sent.
func (l LinkModel) TransferSeconds(bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	t := l.LatencySeconds
	if l.BandwidthMBps > 0 {
		t += float64(bytes) / (l.BandwidthMBps * (1 << 20))
	}
	return t
}

// StreamSeconds returns the simulated time to move the given byte
// volume as a stream of messages chunks messages long — the shape of a
// shard re-replication copy, which ships one message per merge-grid
// chunk so a mid-stream failure only re-sends from the last chunk
// boundary. The per-message latency is paid chunks times; the byte cost
// is identical to a single transfer. chunks < 1 is treated as one
// message, so StreamSeconds(b, 1) == TransferSeconds(b).
func (l LinkModel) StreamSeconds(bytes int64, chunks int) float64 {
	if bytes <= 0 {
		return 0
	}
	if chunks < 1 {
		chunks = 1
	}
	t := l.LatencySeconds * float64(chunks)
	if l.BandwidthMBps > 0 {
		t += float64(bytes) / (l.BandwidthMBps * (1 << 20))
	}
	return t
}

// PaperLink returns the default cluster interconnect: gigabit Ethernet
// (125 MiB/s sustained, 0.5 ms latency) — deliberately slow relative to
// the Tesla C2070's PCIe x16 link (BandwidthMBs), so movement matters to
// placement the way it does in Theseus-class distributed engines.
func PaperLink() LinkModel {
	return LinkModel{LatencySeconds: 0.0005, BandwidthMBps: 125}
}
