// Package perfmodel holds the performance-estimation functions the
// scheduler consumes: the paper's published CPU piecewise models (eqs.
// 4–10), GPU partition models (eqs. 14–15) and the dictionary translation
// model (eqs. 17–18), together with least-squares fitting so the same
// models can be re-derived from fresh measurements — exactly how the paper
// produced Figs. 3–5, 8 and 9 from its own benchmarks.
//
// All model functions return seconds; sizes are in MB (the paper's units).
package perfmodel

import (
	"fmt"
	"math"
)

// Linear is f(x) = Slope·x + Intercept.
type Linear struct {
	Slope     float64
	Intercept float64
}

// Eval evaluates the line.
func (l Linear) Eval(x float64) float64 { return l.Slope*x + l.Intercept }

// PowerLaw is f(x) = Coef·x^Exp.
type PowerLaw struct {
	Coef float64
	Exp  float64
}

// Eval evaluates the power law (0 for non-positive x).
func (p PowerLaw) Eval(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return p.Coef * math.Pow(x, p.Exp)
}

// CPUModel is the two-piece estimator of eq. (4): a power law f_A below
// BreakMB and a line f_B above it. The paper splits at 512 MB because the
// cache hierarchy stops helping there and streaming bandwidth dominates.
type CPUModel struct {
	BreakMB float64
	A       PowerLaw
	B       Linear
}

// Eval returns the estimated processing time in seconds for a sub-cube of
// scMB megabytes (eq. 7 / eq. 10 shape).
func (m CPUModel) Eval(scMB float64) float64 {
	if scMB <= 0 {
		return 0
	}
	if scMB < m.BreakMB {
		return m.A.Eval(scMB)
	}
	return m.B.Eval(scMB)
}

// PaperBreakMB is the paper's Range A / Range B boundary.
const PaperBreakMB = 512

// Published CPU models for the paper's dual Xeon X5667 test system.
var (
	// PaperCPU4T is eq. (7): the 4-thread OpenMP implementation.
	PaperCPU4T = CPUModel{
		BreakMB: PaperBreakMB,
		A:       PowerLaw{Coef: 1e-4, Exp: 0.9341},
		B:       Linear{Slope: 5e-5, Intercept: 0.0096},
	}
	// PaperCPU8T is eq. (10): the 8-thread implementation using all
	// physical cores.
	PaperCPU8T = CPUModel{
		BreakMB: PaperBreakMB,
		A:       PowerLaw{Coef: 6e-5, Exp: 0.984},
		B:       Linear{Slope: 4e-5, Intercept: 0.0146},
	}
	// PaperCPU1T reconstructs the sequential implementation the paper
	// compares against. The paper reports only its throughput (12 q/s on
	// the small-cube mix, Sec. IV) and a ~2 GB/s effective bandwidth
	// between the naive (1 GB/s) and optimised (5 GB/s) single-thread
	// figures; these coefficients reproduce both.
	PaperCPU1T = CPUModel{
		BreakMB: PaperBreakMB,
		A:       PowerLaw{Coef: 7.5e-4, Exp: 0.9341},
		B:       Linear{Slope: 5e-4, Intercept: 0.01},
	}
)

// GPUModel is P_GPU(C/C_TOT) for one partition width: estimated query time
// in seconds as a linear function of the fraction of table columns the
// query touches (eq. 13/14). The per-SM models shrink in both slope and
// intercept as partitions widen.
type GPUModel = Linear

// Published GPU partition models for Tesla C2070 with a 4 GB table
// (eq. 14) and the unpartitioned 14-SM device (eq. 15).
var (
	PaperGPU1SM  = GPUModel{Slope: 0.003, Intercept: 0.0258}
	PaperGPU2SM  = GPUModel{Slope: 0.0015, Intercept: 0.013}
	PaperGPU4SM  = GPUModel{Slope: 0.0008, Intercept: 0.0065}
	PaperGPU14SM = GPUModel{Slope: 0.00021, Intercept: 0.0020}
)

// PaperGPUModels maps SM count to the published model.
func PaperGPUModels() map[int]GPUModel {
	return map[int]GPUModel{
		1:  PaperGPU1SM,
		2:  PaperGPU2SM,
		4:  PaperGPU4SM,
		14: PaperGPU14SM,
	}
}

// DictModel is P_DICT(D_L) of eq. (17): per-lookup translation time as a
// function of dictionary length, linear through the origin (Fig. 9).
type DictModel struct {
	SecondsPerEntry float64
}

// Eval returns the single-lookup time for a dictionary of n entries.
func (d DictModel) Eval(n int) float64 {
	if n <= 0 {
		return 0
	}
	return d.SecondsPerEntry * float64(n)
}

// TransTime is the upper bound of eq. (18): the sum of per-lookup times
// over every pending translation's dictionary length.
func (d DictModel) TransTime(dictLens []int) float64 {
	var t float64
	for _, n := range dictLens {
		t += d.Eval(n)
	}
	return t
}

// PaperDict is the published single-threaded translation model:
// 0.0138 µs per dictionary entry.
var PaperDict = DictModel{SecondsPerEntry: 0.0138e-6}

// Estimator bundles every model the scheduler needs. CPU is keyed by
// thread count, GPU by partition SM count.
type Estimator struct {
	CPU  map[int]CPUModel
	GPU  map[int]GPUModel
	Dict DictModel
}

// PaperEstimator returns the estimator loaded with the published models.
func PaperEstimator() *Estimator {
	return &Estimator{
		CPU: map[int]CPUModel{
			1: PaperCPU1T,
			4: PaperCPU4T,
			8: PaperCPU8T,
		},
		GPU:  PaperGPUModels(),
		Dict: PaperDict,
	}
}

// CPUTime estimates T_CPU for a sub-cube of scMB using the model for the
// given thread count.
func (e *Estimator) CPUTime(threads int, scMB float64) (float64, error) {
	m, ok := e.CPU[threads]
	if !ok {
		return 0, fmt.Errorf("perfmodel: no CPU model for %d threads", threads)
	}
	return m.Eval(scMB), nil
}

// GPUTime estimates T_GPU for a query touching cols of totalCols columns on
// a partition of sm streaming multiprocessors.
func (e *Estimator) GPUTime(sm, cols, totalCols int) (float64, error) {
	m, ok := e.GPU[sm]
	if !ok {
		return 0, fmt.Errorf("perfmodel: no GPU model for %d SMs", sm)
	}
	if totalCols <= 0 {
		return 0, fmt.Errorf("perfmodel: totalCols must be positive")
	}
	frac := float64(cols) / float64(totalCols)
	return m.Eval(frac), nil
}

// TransTime estimates T_TRANS for the pending dictionary lengths.
func (e *Estimator) TransTime(dictLens []int) float64 {
	return e.Dict.TransTime(dictLens)
}

// BandwidthMBs converts a (sizeMB, seconds) pair to MB/s, the unit of the
// paper's Fig. 3.
func BandwidthMBs(sizeMB, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return sizeMB / seconds
}
