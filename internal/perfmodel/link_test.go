package perfmodel

import (
	"math"
	"testing"
)

func TestLinkModel(t *testing.T) {
	l := PaperLink()
	if got := l.TransferSeconds(0); got != 0 {
		t.Fatalf("zero bytes cost %v", got)
	}
	if got := l.TransferSeconds(-5); got != 0 {
		t.Fatalf("negative bytes cost %v", got)
	}
	// 125 MiB at 125 MiB/s = 1 s, plus 0.5 ms latency.
	got := l.TransferSeconds(125 << 20)
	if math.Abs(got-1.0005) > 1e-9 {
		t.Fatalf("125 MiB transfer = %v, want 1.0005", got)
	}
	// Latency dominates tiny messages.
	if got := l.TransferSeconds(1); got <= l.LatencySeconds {
		t.Fatalf("1-byte transfer = %v", got)
	}
	// The zero value is a free link, not a division by zero.
	var free LinkModel
	if got := free.TransferSeconds(1 << 30); got != 0 {
		t.Fatalf("free link cost %v", got)
	}
}
