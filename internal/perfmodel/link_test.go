package perfmodel

import (
	"math"
	"testing"
)

func TestLinkModel(t *testing.T) {
	l := PaperLink()
	if got := l.TransferSeconds(0); got != 0 {
		t.Fatalf("zero bytes cost %v", got)
	}
	if got := l.TransferSeconds(-5); got != 0 {
		t.Fatalf("negative bytes cost %v", got)
	}
	// 125 MiB at 125 MiB/s = 1 s, plus 0.5 ms latency.
	got := l.TransferSeconds(125 << 20)
	if math.Abs(got-1.0005) > 1e-9 {
		t.Fatalf("125 MiB transfer = %v, want 1.0005", got)
	}
	// Latency dominates tiny messages.
	if got := l.TransferSeconds(1); got <= l.LatencySeconds {
		t.Fatalf("1-byte transfer = %v", got)
	}
	// The zero value is a free link, not a division by zero.
	var free LinkModel
	if got := free.TransferSeconds(1 << 30); got != 0 {
		t.Fatalf("free link cost %v", got)
	}
}

func TestLinkModelStream(t *testing.T) {
	l := PaperLink()
	// A single-message stream is exactly one transfer; chunks < 1 is
	// clamped to one message.
	for _, chunks := range []int{1, 0, -3} {
		if got, want := l.StreamSeconds(125<<20, chunks), l.TransferSeconds(125<<20); got != want {
			t.Fatalf("StreamSeconds(chunks=%d) = %v, want %v", chunks, got, want)
		}
	}
	// 16 chunks pay 16 latencies but the same byte cost.
	got := l.StreamSeconds(125<<20, 16)
	want := 1 + 16*l.LatencySeconds
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("16-chunk stream = %v, want %v", got, want)
	}
	if got := l.StreamSeconds(0, 16); got != 0 {
		t.Fatalf("empty stream cost %v", got)
	}
	var free LinkModel
	if got := free.StreamSeconds(1<<30, 64); got != 0 {
		t.Fatalf("free link stream cost %v", got)
	}
}
