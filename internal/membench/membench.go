// Package membench measures this implementation the way the paper measured
// its own test system: streaming-aggregation bandwidth over cubes of
// increasing size (Fig. 3), processing time versus sub-cube size for
// different worker counts (Figs. 4–5), GPU partition query time versus the
// fraction of columns accessed (Fig. 8) and dictionary search time versus
// dictionary length (Fig. 9). The resulting points feed perfmodel's
// fitting functions, re-deriving the estimation models from scratch.
package membench

import (
	"fmt"
	"time"

	"hybridolap/internal/cube"
	"hybridolap/internal/dict"
	"hybridolap/internal/gpusim"
	"hybridolap/internal/perfmodel"
	"hybridolap/internal/table"
	"hybridolap/internal/tpcds"
)

// CPUPoint is one cube-processing measurement.
type CPUPoint struct {
	SizeMB       float64
	Seconds      float64
	BandwidthMBs float64
}

// cubeCards shapes a 3-d cube holding approximately the requested number
// of cells: a flat-ish box so the first dimension carries the growth.
func cubeCards(cells int64) []int {
	const b, c = 64, 64
	a := cells / (b * c)
	if a < 1 {
		a = 1
	}
	return []int{int(a), b, c}
}

// CPUSweep measures full-cube aggregation time for each size with the
// given worker count, repeating reps times and keeping the fastest run
// (the paper's benchmarks report steady-state bandwidth, so the cold run
// is discarded the same way).
func CPUSweep(sizesMB []float64, workers, reps int, seed int64) ([]CPUPoint, error) {
	if reps < 1 {
		reps = 1
	}
	out := make([]CPUPoint, 0, len(sizesMB))
	for _, mb := range sizesMB {
		cells := int64(mb * (1 << 20) / cube.CellSize)
		if cells < 1 {
			return nil, fmt.Errorf("membench: size %v MB too small", mb)
		}
		c, err := cube.BuildSynthetic(0, cubeCards(cells), 1.0, seed, cube.Config{Compress: true})
		if err != nil {
			return nil, err
		}
		cards := c.Cards()
		box := cube.Box{
			{From: 0, To: uint32(cards[0] - 1)},
			{From: 0, To: uint32(cards[1] - 1)},
			{From: 0, To: uint32(cards[2] - 1)},
		}
		best := time.Duration(1<<62 - 1)
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			if _, err := c.Aggregate(box, workers); err != nil {
				return nil, err
			}
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		actualMB := float64(box.Bytes()) / (1 << 20)
		secs := best.Seconds()
		out = append(out, CPUPoint{
			SizeMB:       actualMB,
			Seconds:      secs,
			BandwidthMBs: perfmodel.BandwidthMBs(actualMB, secs),
		})
	}
	return out, nil
}

// CPUPointsForFit converts a sweep to perfmodel fit points (size → time).
func CPUPointsForFit(pts []CPUPoint) []perfmodel.Point {
	out := make([]perfmodel.Point, len(pts))
	for i, p := range pts {
		out[i] = perfmodel.Point{X: p.SizeMB, Y: p.Seconds}
	}
	return out
}

// DictPoint is one dictionary-search measurement.
type DictPoint struct {
	Entries          int
	SecondsPerLookup float64
}

// DictSweep measures mean per-lookup time of the linear-scan dictionary
// for each size — the cost shape of eq. (17) / Fig. 9. The probe set mixes
// hits across the whole dictionary.
func DictSweep(sizes []int, lookups int) ([]DictPoint, error) {
	if lookups < 1 {
		lookups = 1
	}
	out := make([]DictPoint, 0, len(sizes))
	for _, n := range sizes {
		d, err := tpcds.Dictionary(n, dict.KindLinear, tpcds.CityName)
		if err != nil {
			return nil, err
		}
		probes := make([]string, lookups)
		for i := range probes {
			s, _ := d.Decode(dict.ID((i * 7919) % n))
			probes[i] = s
		}
		t0 := time.Now()
		for _, p := range probes {
			if _, ok := d.Lookup(p); !ok {
				return nil, fmt.Errorf("membench: probe %q missing", p)
			}
		}
		el := time.Since(t0).Seconds()
		out = append(out, DictPoint{Entries: n, SecondsPerLookup: el / float64(lookups)})
	}
	return out, nil
}

// DictPointsForFit converts a dictionary sweep to fit points.
func DictPointsForFit(pts []DictPoint) []perfmodel.Point {
	out := make([]perfmodel.Point, len(pts))
	for i, p := range pts {
		out[i] = perfmodel.Point{X: float64(p.Entries), Y: p.SecondsPerLookup}
	}
	return out
}

// GPUPoint is one simulated-device kernel measurement.
type GPUPoint struct {
	SMs       int
	Columns   int
	Fraction  float64 // C / C_TOT
	Seconds   float64
	Estimated float64 // the calibrated model's prediction, for comparison
}

// GPUSweep measures real wall-clock kernel time on the functional GPU
// simulator for queries touching 1..maxCols columns, per partition width.
// The shape (linear growth with the number of columns scanned, smaller
// slope for wider partitions) mirrors Fig. 8; absolute values are host CPU
// times, not Tesla times.
func GPUSweep(rows int, widths []int, maxCols, reps int, seed int64) ([]GPUPoint, error) {
	ft, err := table.Generate(table.GenSpec{Schema: table.PaperSchema(), Rows: rows, Seed: seed})
	if err != nil {
		return nil, err
	}
	dev, err := gpusim.NewDevice(gpusim.TeslaC2070())
	if err != nil {
		return nil, err
	}
	if err := dev.LoadTable(ft); err != nil {
		return nil, err
	}
	if err := dev.Partition(widths); err != nil {
		return nil, err
	}
	if reps < 1 {
		reps = 1
	}
	s := ft.Schema()
	total := s.TotalColumns()

	// Predicates in a fixed useful order: one per (dim, level), all
	// full-range so every row passes and the scan streams every column.
	var preds []table.RangePredicate
	for d, dim := range s.Dimensions {
		for l, lv := range dim.Levels {
			preds = append(preds, table.RangePredicate{
				Dim: d, Level: l, From: 0, To: uint32(lv.Cardinality - 1),
			})
		}
	}

	var out []GPUPoint
	for _, p := range dev.Partitions() {
		for nc := 1; nc <= maxCols && nc <= len(preds); nc++ {
			req := table.ScanRequest{Predicates: preds[:nc], Measure: 0, Op: table.AggSum}
			best := time.Duration(1<<62 - 1)
			for r := 0; r < reps; r++ {
				t0 := time.Now()
				if _, err := p.Execute(req); err != nil {
					return nil, err
				}
				if d := time.Since(t0); d < best {
					best = d
				}
			}
			cols := req.ColumnsAccessed()
			estd, _ := p.EstimateSeconds(cols, total)
			out = append(out, GPUPoint{
				SMs:       p.SMs(),
				Columns:   cols,
				Fraction:  float64(cols) / float64(total),
				Seconds:   best.Seconds(),
				Estimated: estd,
			})
		}
	}
	return out, nil
}

// GPUPointsForFit converts the sweep for one SM width to fit points
// (fraction → seconds).
func GPUPointsForFit(pts []GPUPoint, sms int) []perfmodel.Point {
	var out []perfmodel.Point
	for _, p := range pts {
		if p.SMs == sms {
			out = append(out, perfmodel.Point{X: p.Fraction, Y: p.Seconds})
		}
	}
	return out
}
