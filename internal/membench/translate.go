package membench

import (
	"fmt"
	"time"

	"hybridolap/internal/dict"
	"hybridolap/internal/tpcds"
)

// AlgoPoint is one translation-algorithm measurement.
type AlgoPoint struct {
	Algo             string
	Entries          int
	SecondsPerLookup float64
}

// TranslationAlgoSweep measures per-lookup translation cost across
// dictionary implementations — the paper's naive linear search (the eq. 17
// cost the system pays) against the sorted, hash and trie dictionaries and
// Aho–Corasick batch translation (the "more sophisticated translation
// algorithm" the paper's conclusion defers to future work).
func TranslationAlgoSweep(sizes []int, lookups int) ([]AlgoPoint, error) {
	if lookups < 1 {
		lookups = 1
	}
	var out []AlgoPoint
	for _, n := range sizes {
		// One entry corpus, all implementations share codes.
		base, err := tpcds.Dictionary(n, dict.KindSorted, tpcds.CityName)
		if err != nil {
			return nil, err
		}
		entries := make([]string, base.Len())
		for i := range entries {
			entries[i], _ = base.Decode(dict.ID(i))
		}
		probes := make([]string, lookups)
		for i := range probes {
			probes[i] = entries[(i*7919)%n]
		}

		kinds := []struct {
			name  string
			build func() (dict.Dictionary, error)
		}{
			{"linear", func() (dict.Dictionary, error) { return dict.NewLinear(entries) }},
			{"sorted", func() (dict.Dictionary, error) { return dict.NewSorted(entries) }},
			{"hash", func() (dict.Dictionary, error) { return dict.NewHash(entries) }},
			{"trie", func() (dict.Dictionary, error) { return dict.NewTrie(entries) }},
		}
		for _, k := range kinds {
			d, err := k.build()
			if err != nil {
				return nil, err
			}
			t0 := time.Now()
			for _, p := range probes {
				if _, ok := d.Lookup(p); !ok {
					return nil, fmt.Errorf("membench: probe %q missing from %s", p, k.name)
				}
			}
			el := time.Since(t0).Seconds()
			out = append(out, AlgoPoint{Algo: k.name, Entries: n, SecondsPerLookup: el / float64(lookups)})
		}

		m, err := dict.NewMatcher(entries)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		ids := m.LookupBatch(probes)
		el := time.Since(t0).Seconds()
		for i, id := range ids {
			if id == dict.NotFound {
				return nil, fmt.Errorf("membench: batch probe %q missing", probes[i])
			}
		}
		out = append(out, AlgoPoint{Algo: "aho-corasick batch", Entries: n, SecondsPerLookup: el / float64(lookups)})
	}
	return out, nil
}
