package membench

import (
	"testing"

	"hybridolap/internal/perfmodel"
)

func TestCPUSweepShapes(t *testing.T) {
	pts, err := CPUSweep([]float64{1, 4, 16}, 4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	for i, p := range pts {
		if p.Seconds <= 0 || p.BandwidthMBs <= 0 {
			t.Fatalf("point %d degenerate: %+v", i, p)
		}
		// Requested and actual sizes agree within the cell rounding.
		if p.SizeMB < 0.5 {
			t.Fatalf("point %d too small: %+v", i, p)
		}
	}
	// Time grows with size.
	if !(pts[2].Seconds > pts[0].Seconds) {
		t.Fatalf("time not increasing: %+v", pts)
	}
}

func TestCPUSweepRejectsTinySize(t *testing.T) {
	if _, err := CPUSweep([]float64{0.00001}, 1, 1, 1); err == nil {
		t.Fatal("microscopic size accepted")
	}
}

func TestCPUPointsFitPowerLaw(t *testing.T) {
	// Small-range sweep should fit a power law with positive exponent, the
	// f_A shape of Figs. 4–5.
	pts, err := CPUSweep([]float64{1, 2, 4, 8, 16}, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := perfmodel.FitPowerLaw(CPUPointsForFit(pts))
	if err != nil {
		t.Fatal(err)
	}
	if pl.Exp <= 0.3 || pl.Exp > 1.8 {
		t.Fatalf("power-law exponent = %v, out of plausible range", pl.Exp)
	}
	if r := perfmodel.RSquared(CPUPointsForFit(pts), pl.Eval); r < 0.8 {
		t.Fatalf("R² = %v", r)
	}
}

func TestDictSweepLinearShape(t *testing.T) {
	pts, err := DictSweep([]int{1000, 4000, 16000}, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// Per-lookup cost grows with dictionary size (linear scan).
	if !(pts[2].SecondsPerLookup > pts[0].SecondsPerLookup) {
		t.Fatalf("dict cost not increasing: %+v", pts)
	}
	m, err := perfmodel.FitDictModel(DictPointsForFit(pts))
	if err != nil {
		t.Fatal(err)
	}
	if m.SecondsPerEntry <= 0 {
		t.Fatalf("fitted slope = %v", m.SecondsPerEntry)
	}
}

func TestGPUSweepShapes(t *testing.T) {
	pts, err := GPUSweep(100_000, []int{1, 4}, 6, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 12 {
		t.Fatalf("points = %d, want 12", len(pts))
	}
	// Time grows with column count within one width.
	one := GPUPointsForFit(pts, 1)
	if len(one) != 6 {
		t.Fatalf("1-SM points = %d", len(one))
	}
	if !(one[5].Y > one[0].Y) {
		t.Fatalf("1-SM time not increasing: %+v", one)
	}
	// Fit is linear-ish with positive slope.
	m, err := perfmodel.FitGPUModel(one)
	if err != nil {
		t.Fatal(err)
	}
	if m.Slope <= 0 {
		t.Fatalf("fitted slope = %v", m.Slope)
	}
	// The calibrated model attached to every point preserves the paper's
	// ordering: wider partitions estimate strictly faster. (Host wall times
	// for sub-millisecond kernels are too noisy to assert cross-width
	// speedups; that property is asserted on larger kernels in the root
	// benchmark suite.)
	for _, p := range pts {
		if p.Estimated <= 0 {
			t.Fatalf("missing model estimate: %+v", p)
		}
	}
	var est1, est4 float64
	for _, p := range pts {
		if p.Columns == 6 {
			if p.SMs == 1 {
				est1 = p.Estimated
			}
			if p.SMs == 4 {
				est4 = p.Estimated
			}
		}
	}
	if est4 >= est1 {
		t.Fatalf("model ordering violated: 1SM=%v 4SM=%v", est1, est4)
	}
}

func TestTranslationAlgoSweep(t *testing.T) {
	pts, err := TranslationAlgoSweep([]int{500, 4000}, 100)
	if err != nil {
		t.Fatal(err)
	}
	// 5 algorithms x 2 sizes.
	if len(pts) != 10 {
		t.Fatalf("points = %d", len(pts))
	}
	byAlgo := map[string][]AlgoPoint{}
	for _, p := range pts {
		if p.SecondsPerLookup <= 0 {
			t.Fatalf("degenerate point %+v", p)
		}
		byAlgo[p.Algo] = append(byAlgo[p.Algo], p)
	}
	if len(byAlgo) != 5 {
		t.Fatalf("algorithms = %v", byAlgo)
	}
	// The linear dictionary must grow with size; the hash must not grow
	// anywhere near linearly.
	lin := byAlgo["linear"]
	if !(lin[1].SecondsPerLookup > lin[0].SecondsPerLookup) {
		t.Fatalf("linear cost not increasing: %+v", lin)
	}
	hash := byAlgo["hash"]
	if hash[1].SecondsPerLookup > lin[1].SecondsPerLookup {
		t.Fatalf("hash (%v) slower than linear (%v) at 4000 entries",
			hash[1].SecondsPerLookup, lin[1].SecondsPerLookup)
	}
}
