package table

import (
	"bytes"
	"testing"
)

func TestTableSaveLoadRoundTrip(t *testing.T) {
	orig, err := Generate(GenSpec{Schema: smallSchema(), Rows: 700, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows() != orig.Rows() {
		t.Fatalf("rows %d vs %d", got.Rows(), orig.Rows())
	}
	if got.SizeBytes() != orig.SizeBytes() {
		t.Fatalf("size %d vs %d", got.SizeBytes(), orig.SizeBytes())
	}
	// Every column identical, including derived coarse levels.
	s := orig.Schema()
	for d, dim := range s.Dimensions {
		for l := range dim.Levels {
			for r := 0; r < orig.Rows(); r++ {
				if got.CoordAt(r, d, l) != orig.CoordAt(r, d, l) {
					t.Fatalf("coord (%d,%d,%d) differs", r, d, l)
				}
			}
		}
	}
	for m := range s.Measures {
		for r := 0; r < orig.Rows(); r++ {
			if got.MeasureColumn(m)[r] != orig.MeasureColumn(m)[r] {
				t.Fatalf("measure (%d,%d) differs", m, r)
			}
		}
	}
	for i := range s.Texts {
		for r := 0; r < orig.Rows(); r++ {
			if got.TextColumn(i)[r] != orig.TextColumn(i)[r] {
				t.Fatalf("text (%d,%d) differs", i, r)
			}
		}
	}
	// Dictionaries round-trip: same lookups.
	od, _ := orig.Dicts().Get("city")
	gd, ok := got.Dicts().Get("city")
	if !ok || gd.Len() != od.Len() {
		t.Fatal("dictionary lost")
	}
	for id := 0; id < od.Len(); id++ {
		a, _ := od.Decode(uint32(id))
		b, _ := gd.Decode(uint32(id))
		if a != b {
			t.Fatalf("dict entry %d: %q vs %q", id, a, b)
		}
	}
	// Scans agree.
	req := ScanRequest{
		Predicates: []RangePredicate{{Dim: 0, Level: 1, From: 0, To: 11}},
		Measure:    0, Op: AggSum,
	}
	a, _ := Scan(orig, req)
	b, _ := Scan(got, req)
	if a != b {
		t.Fatalf("scan differs: %+v vs %+v", a, b)
	}
}

func TestTableLoadRejectsCorruption(t *testing.T) {
	orig, _ := Generate(GenSpec{Schema: smallSchema(), Rows: 50, Seed: 62})
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip one payload byte near the end (measure data region).
	tampered := append([]byte(nil), data...)
	tampered[len(tampered)-20] ^= 0x01
	if _, err := Load(bytes.NewReader(tampered)); err == nil {
		t.Fatal("corrupted payload accepted")
	}
	// Truncation.
	if _, err := Load(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Fatal("truncated file accepted")
	}
	// Wrong magic.
	bad := append([]byte(nil), data...)
	bad[4] = 'X' // first magic byte after the length prefix
	if _, err := Load(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Empty input.
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestTableSaveLoadNoTextColumns(t *testing.T) {
	schema := Schema{
		Dimensions: []DimensionSpec{{Name: "d", Levels: []LevelSpec{{Name: "l", Cardinality: 4}}}},
		Measures:   []MeasureSpec{{Name: "m"}},
	}
	orig, err := Generate(GenSpec{Schema: schema, Rows: 20, Seed: 63})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows() != 20 || got.Dicts() != nil {
		t.Fatalf("rows=%d dicts=%v", got.Rows(), got.Dicts())
	}
}
