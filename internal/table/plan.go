package table

import (
	"fmt"
	"sort"
)

// A ScanPlan is a ScanRequest bound to one table: every predicate is
// validated once, its code column resolved to a concrete slice, and the
// predicate list reordered by estimated selectivity (most selective
// first), so that the per-stripe kernels the GPU simulator launches do no
// validation, no column lookup and no re-ordering work at all. The
// row-at-a-time ScanRange stays as the reference kernel; a plan's Range
// is the vectorized production kernel and produces bit-identical results
// (same row visit order, same float accumulation order).
type ScanPlan struct {
	op    AggOp
	rows  int
	meas  []float64 // nil for pure counts
	preds []boundPred
	// never is set when some predicate can match no row (inverted range
	// with no Or intervals): the whole scan short-circuits to zero.
	never bool
}

// predShape selects the monomorphic filter kernel for one predicate.
type predShape int

const (
	// shapeRange is a single [From, To] interval.
	shapeRange predShape = iota
	// shapeOr is an interval plus a disjunctive Or-list of intervals.
	shapeOr
	// shapePoints is the translated-text IN-list shape: every accepted
	// interval is a single code, so the kernel compares equality against
	// a short code list instead of walking interval pairs.
	shapePoints
)

// boundPred is one predicate of a plan: column resolved, shape chosen,
// selectivity estimated.
type boundPred struct {
	col      []uint32
	from, to uint32
	or       []CodeRange
	points   []uint32 // shapePoints: the accepted codes
	shape    predShape
	sel      float64 // estimated fraction of rows passing, for ordering
}

// Op returns the plan's aggregation op (callers need it for Merge and
// Finalize of partial results).
func (pl *ScanPlan) Op() AggOp { return pl.op }

// Rows returns the number of rows of the bound table.
func (pl *ScanPlan) Rows() int { return pl.rows }

// validatePred bounds-checks the column a predicate addresses.
func validatePred(t *FactTable, p *RangePredicate) error {
	if p.Text {
		if p.TextIndex < 0 || p.TextIndex >= len(t.texts) {
			return fmt.Errorf("table: text column %d out of range", p.TextIndex)
		}
		return nil
	}
	if p.Dim < 0 || p.Dim >= len(t.dimLevels) {
		return fmt.Errorf("table: dimension %d out of range", p.Dim)
	}
	if p.Level < 0 || p.Level >= len(t.dimLevels[p.Dim]) {
		return fmt.Errorf("table: level %d out of range for dimension %d", p.Level, p.Dim)
	}
	return nil
}

// predCardinality returns the number of distinct codes the predicate's
// column can carry, or 0 when unknown (missing dictionary).
func predCardinality(t *FactTable, p *RangePredicate) int {
	if !p.Text {
		return t.schema.LevelCardinality(p.Dim, p.Level)
	}
	if t.dicts == nil || p.TextIndex >= len(t.schema.Texts) {
		return 0
	}
	return t.dicts.DictLen(t.schema.Texts[p.TextIndex].Name)
}

// intervalWidth counts the codes of [from, to] that fall inside [0, card).
func intervalWidth(from, to uint32, card int) int64 {
	if to < from {
		return 0
	}
	hi := int64(to)
	if card > 0 && hi > int64(card)-1 {
		hi = int64(card) - 1
	}
	if lo := int64(from); lo <= hi {
		return hi - lo + 1
	}
	return 0
}

// estimateSelectivity estimates the fraction of rows a predicate accepts,
// assuming codes distribute uniformly over the column's cardinality (true
// for the synthetic generator, close enough for ordering real columns).
// Overlapping Or intervals are counted twice — this is an ordering
// heuristic, not an answer. Unknown cardinalities estimate 1 (filter
// last).
func estimateSelectivity(t *FactTable, p *RangePredicate) float64 {
	card := predCardinality(t, p)
	if card <= 0 {
		return 1
	}
	w := intervalWidth(p.From, p.To, card)
	for _, r := range p.Or {
		w += intervalWidth(r.From, r.To, card)
	}
	s := float64(w) / float64(card)
	if s > 1 {
		s = 1
	}
	return s
}

// bindPred resolves one predicate against the table and picks its kernel
// shape.
func bindPred(t *FactTable, p *RangePredicate) boundPred {
	bp := boundPred{
		col:  predCol(t, *p),
		from: p.From,
		to:   p.To,
		or:   p.Or,
		sel:  estimateSelectivity(t, p),
	}
	switch {
	case len(p.Or) == 0:
		bp.shape = shapeRange
	default:
		// The translated IN-list shape: the base interval and every Or
		// interval are single codes. Collect them into one flat list.
		points := true
		if p.From != p.To {
			points = false
		}
		for _, r := range p.Or {
			if r.From != r.To {
				points = false
				break
			}
		}
		if points {
			bp.shape = shapePoints
			bp.points = make([]uint32, 0, len(p.Or)+1)
			bp.points = append(bp.points, p.From)
			for _, r := range p.Or {
				bp.points = append(bp.points, r.From)
			}
		} else {
			bp.shape = shapeOr
		}
	}
	return bp
}

// BindScan validates the request against the table once and returns a
// reusable plan. The plan is immutable after binding and safe for
// concurrent Range calls (the paper's per-SM stripe kernels all share
// one plan).
func BindScan(t *FactTable, req ScanRequest) (*ScanPlan, error) {
	pl := &ScanPlan{op: req.Op, rows: t.rows}
	if req.Op != AggCount {
		if req.Measure < 0 || req.Measure >= len(t.measures) {
			return nil, fmt.Errorf("table: measure %d out of range", req.Measure)
		}
		pl.meas = t.measures[req.Measure]
	}
	pl.preds = make([]boundPred, 0, len(req.Predicates))
	for i := range req.Predicates {
		p := &req.Predicates[i]
		if err := validatePred(t, p); err != nil {
			return nil, err
		}
		bp := bindPred(t, p)
		if bp.from > bp.to && len(bp.or) == 0 {
			// Inverted interval with no alternatives: nothing can pass.
			pl.never = true
		}
		pl.preds = append(pl.preds, bp)
	}
	// Most selective predicate first: the cheapest predicate to seed the
	// selection vector is the one that keeps it shortest for every later
	// refinement pass. Stable, so equal estimates keep request order —
	// binding the same request always yields the same plan.
	sort.SliceStable(pl.preds, func(i, j int) bool { return pl.preds[i].sel < pl.preds[j].sel })
	return pl, nil
}
