package table

import (
	"fmt"
	"math/rand"
)

// GenSpec configures the deterministic synthetic fact-table generator.
type GenSpec struct {
	Schema Schema
	Rows   int
	Seed   int64
	// TextPools[i] is the value pool for text column i; rows draw uniformly
	// from the pool. When nil, a pool of DefaultPoolSize synthetic values
	// is used.
	TextPools [][]string
	// MeasureMax bounds generated measure values (default 1000).
	MeasureMax float64
}

// DefaultPoolSize is the synthetic text pool size when none is supplied.
const DefaultPoolSize = 1000

// Generate builds a synthetic fact table: uniform coordinates at each
// dimension's finest level, uniform measures in [0, MeasureMax), and text
// values drawn from the pools. The same spec always yields the same table.
func Generate(spec GenSpec) (*FactTable, error) {
	if spec.Rows < 0 {
		return nil, fmt.Errorf("table: negative row count %d", spec.Rows)
	}
	b, err := NewBuilder(spec.Schema)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	max := spec.MeasureMax
	if max <= 0 {
		max = 1000
	}
	pools := spec.TextPools
	if pools == nil && len(spec.Schema.Texts) > 0 {
		pools = make([][]string, len(spec.Schema.Texts))
	}
	for i := range pools {
		if len(pools[i]) == 0 {
			pool := make([]string, DefaultPoolSize)
			for j := range pool {
				pool[j] = fmt.Sprintf("%s-%06d", spec.Schema.Texts[i].Name, j)
			}
			pools[i] = pool
		}
	}

	row := Row{
		Coords:   make([]int, len(spec.Schema.Dimensions)),
		Measures: make([]float64, len(spec.Schema.Measures)),
		Texts:    make([]string, len(spec.Schema.Texts)),
	}
	for r := 0; r < spec.Rows; r++ {
		for d, dim := range spec.Schema.Dimensions {
			row.Coords[d] = rng.Intn(dim.Levels[dim.Finest()].Cardinality)
		}
		for m := range row.Measures {
			row.Measures[m] = rng.Float64() * max
		}
		for i := range row.Texts {
			row.Texts[i] = pools[i][rng.Intn(len(pools[i]))]
		}
		if err := b.Append(row); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

// PaperSchema returns the evaluation configuration of Sec. IV: "the GPU has
// fact table of size ~4GB which contains 3 dimensions, 4 levels in each
// dimension". The level cardinalities are chosen so the four cube
// resolutions land on the paper's pre-calculated cube sizes with 32-byte
// cells:
//
//	level 0:    8·4·4    =      128 cells →   4 KB  (paper: ~4 KB)
//	level 1:   32·16·32  =   16 384 cells → 512 KB  (paper: ~500 KB)
//	level 2:  256·128·512 ≈  16.8 M cells → 512 MB  (paper: ~500 MB)
//	level 3: 1024·512·2048 ≈ 1.07 G cells →  32 GB  (paper: ~32 GB)
func PaperSchema() Schema {
	return Schema{
		Dimensions: []DimensionSpec{
			{Name: "time", Levels: []LevelSpec{
				{Name: "year", Cardinality: 8},
				{Name: "month", Cardinality: 32},
				{Name: "day", Cardinality: 256},
				{Name: "hour", Cardinality: 1024},
			}},
			{Name: "geo", Levels: []LevelSpec{
				{Name: "region", Cardinality: 4},
				{Name: "country", Cardinality: 16},
				{Name: "state", Cardinality: 128},
				{Name: "city", Cardinality: 512},
			}},
			{Name: "product", Levels: []LevelSpec{
				{Name: "sector", Cardinality: 4},
				{Name: "category", Cardinality: 32},
				{Name: "brand", Cardinality: 512},
				{Name: "item", Cardinality: 2048},
			}},
		},
		Measures: []MeasureSpec{
			{Name: "sales"},
			{Name: "quantity"},
		},
		Texts: []TextSpec{
			{Name: "store_name"},
			{Name: "customer_city"},
		},
	}
}
