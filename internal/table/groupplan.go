package table

import (
	"fmt"
	"sort"
)

// A GroupScanPlan is a GroupScanRequest bound to one table: predicates
// validated, resolved and selectivity-ordered exactly as in ScanPlan,
// plus the group-by code columns resolved once. The vectorized RangeInto
// accumulates straight into a caller-owned Groups map, so a simulated SM
// draining many stripes builds one hash table instead of allocating and
// merging one per stripe.
type GroupScanPlan struct {
	op    AggOp
	rows  int
	meas  []float64
	preds []boundPred
	never bool
	gcols [][]uint32
}

// Op returns the plan's aggregation op.
func (pl *GroupScanPlan) Op() AggOp { return pl.op }

// Rows returns the number of rows of the bound table.
func (pl *GroupScanPlan) Rows() int { return pl.rows }

// GroupCols returns the number of grouping columns.
func (pl *GroupScanPlan) GroupCols() int { return len(pl.gcols) }

// validateGroupCol bounds-checks one grouping column and its 16-bit key
// budget.
func validateGroupCol(t *FactTable, g GroupCol) ([]uint32, error) {
	if g.Text {
		if g.TextIndex < 0 || g.TextIndex >= len(t.texts) {
			return nil, fmt.Errorf("table: group text column %d out of range", g.TextIndex)
		}
		if d := t.schema.Texts[g.TextIndex]; d.Name != "" {
			// Grouping by huge dictionaries still packs into 16 bits.
			if dd, ok := t.dicts.Get(d.Name); ok && dd.Len() > 0xFFFF {
				return nil, fmt.Errorf("table: text column %q has %d codes; grouping supports <= 65536", d.Name, dd.Len())
			}
		}
		return t.texts[g.TextIndex], nil
	}
	if g.Dim < 0 || g.Dim >= len(t.dimLevels) || g.Level < 0 || g.Level >= len(t.dimLevels[g.Dim]) {
		return nil, fmt.Errorf("table: group column (%d,%d) out of range", g.Dim, g.Level)
	}
	if t.schema.LevelCardinality(g.Dim, g.Level) > 0x10000 {
		return nil, fmt.Errorf("table: group level cardinality %d exceeds 65536",
			t.schema.LevelCardinality(g.Dim, g.Level))
	}
	return t.dimLevels[g.Dim][g.Level], nil
}

// BindGroupScan validates the grouped request against the table once and
// returns a reusable plan, safe for concurrent RangeInto calls on
// disjoint destination maps.
func BindGroupScan(t *FactTable, req GroupScanRequest) (*GroupScanPlan, error) {
	if len(req.GroupBy) == 0 {
		return nil, fmt.Errorf("table: grouped scan needs at least one group column")
	}
	if len(req.GroupBy) > MaxGroupCols {
		return nil, fmt.Errorf("table: at most %d group columns (got %d)", MaxGroupCols, len(req.GroupBy))
	}
	pl := &GroupScanPlan{op: req.Op, rows: t.rows}
	if req.Op != AggCount {
		if req.Measure < 0 || req.Measure >= len(t.measures) {
			return nil, fmt.Errorf("table: measure %d out of range", req.Measure)
		}
		pl.meas = t.measures[req.Measure]
	}
	pl.preds = make([]boundPred, 0, len(req.Predicates))
	for i := range req.Predicates {
		p := &req.Predicates[i]
		if err := validatePred(t, p); err != nil {
			return nil, err
		}
		bp := bindPred(t, p)
		if bp.from > bp.to && len(bp.or) == 0 {
			pl.never = true
		}
		pl.preds = append(pl.preds, bp)
	}
	sort.SliceStable(pl.preds, func(i, j int) bool { return pl.preds[i].sel < pl.preds[j].sel })
	pl.gcols = make([][]uint32, len(req.GroupBy))
	for i, g := range req.GroupBy {
		col, err := validateGroupCol(t, g)
		if err != nil {
			return nil, err
		}
		pl.gcols[i] = col
	}
	return pl, nil
}

// key packs the group coordinates of row r.
//
//olaplint:noalloc
func (pl *GroupScanPlan) key(r int) GroupKey {
	var k GroupKey
	for _, gc := range pl.gcols {
		k = k<<16 | GroupKey(gc[r]&0xFFFF)
	}
	return k
}

// RangeInto runs the vectorized grouped kernel over rows [lo, hi),
// accumulating into dst (allocated when nil) and returning it. One call
// with a nil dst is bit-identical to GroupScanRange over the same stripe;
// accumulating consecutive stripes into one dst is bit-identical to a
// single GroupScanRange over their union (continuous accumulation rounds
// like one long scan, not like MergeGroups over partial sums — which is
// the point: a simulated SM drains many stripes into one hash table).
func (pl *GroupScanPlan) RangeInto(lo, hi int, dst Groups) (Groups, error) {
	if lo < 0 || hi > pl.rows || lo > hi {
		return dst, fmt.Errorf("table: scan range [%d,%d) outside [0,%d)", lo, hi, pl.rows)
	}
	if dst == nil {
		dst = make(Groups)
	}
	if pl.never {
		return dst, nil
	}
	sc := scanScratchPool.Get().(*scanScratch)
	sel := sc.sel
	for base := lo; base < hi; base += BatchSize {
		n := hi - base
		if n > BatchSize {
			n = BatchSize
		}
		k := n
		if len(pl.preds) > 0 {
			k = pl.preds[0].seed(base, n, sel)
			for pi := 1; pi < len(pl.preds) && k > 0; pi++ {
				k = pl.preds[pi].refine(base, sel[:k])
			}
		} else {
			for i := 0; i < n; i++ {
				sel[i] = int32(i)
			}
		}
		if k == 0 {
			continue
		}
		// One loop per op over the surviving rows; the op switch runs
		// once per batch, not once per row.
		switch pl.op {
		case AggSum, AggAvg:
			for _, i := range sel[:k] {
				r := base + int(i)
				key := pl.key(r)
				acc := dst[key]
				acc.Rows++
				acc.Value += pl.meas[r]
				dst[key] = acc
			}
		case AggCount:
			for _, i := range sel[:k] {
				key := pl.key(base + int(i))
				acc := dst[key]
				acc.Rows++
				dst[key] = acc
			}
		case AggMin:
			for _, i := range sel[:k] {
				r := base + int(i)
				key := pl.key(r)
				acc := dst[key]
				if acc.Rows == 0 || pl.meas[r] < acc.Value {
					acc.Value = pl.meas[r]
				}
				acc.Rows++
				dst[key] = acc
			}
		case AggMax:
			for _, i := range sel[:k] {
				r := base + int(i)
				key := pl.key(r)
				acc := dst[key]
				if acc.Rows == 0 || pl.meas[r] > acc.Value {
					acc.Value = pl.meas[r]
				}
				acc.Rows++
				dst[key] = acc
			}
		}
	}
	scanScratchPool.Put(sc)
	return dst, nil
}

// GroupScan runs the grouped plan over the whole table and finalises —
// the vectorized counterpart of the package-level GroupScan.
func (pl *GroupScanPlan) GroupScan() ([]GroupRow, error) {
	g, err := pl.RangeInto(0, pl.rows, nil)
	if err != nil {
		return nil, err
	}
	return FinalizeGroups(pl.op, g, len(pl.gcols)), nil
}
