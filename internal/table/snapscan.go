package table

import "fmt"

// Snapshot scans: the sequential reference kernels of the live table.
// Each stripe is scanned with the vectorized plan, threading one running
// accumulator across stripes in logical row order — RangeFrom for scalar
// aggregates, RangeInto's shared destination map for grouped ones — so the
// result is bit-identical to scanning a single table rebuilt from the
// snapshot's rows, never merely tolerance-close. The differential epoch
// tests pin the engine to exactly this property.

// ScanSnapshot runs req over every stripe of the snapshot in order and
// finalises, equivalent to Scan over a from-scratch rebuild of the
// visible rows.
func ScanSnapshot(snap *Snapshot, req ScanRequest) (ScanResult, error) {
	acc := ScanResult{}
	for _, st := range snap.Stripes() {
		pl, err := BindScan(st.Table(), req)
		if err != nil {
			return ScanResult{}, err
		}
		acc, err = pl.RangeFrom(acc, 0, st.Rows())
		if err != nil {
			return ScanResult{}, err
		}
	}
	return Finalize(req.Op, acc), nil
}

// GroupScanSnapshot runs the grouped req over every stripe of the
// snapshot in order, accumulating into one destination map, and
// finalises — equivalent to GroupScan over a from-scratch rebuild.
func GroupScanSnapshot(snap *Snapshot, req GroupScanRequest) ([]GroupRow, error) {
	if len(req.GroupBy) == 0 {
		return nil, fmt.Errorf("table: grouped scan needs at least one group column")
	}
	if len(req.GroupBy) > MaxGroupCols {
		return nil, fmt.Errorf("table: at most %d group columns (got %d)", MaxGroupCols, len(req.GroupBy))
	}
	g := make(Groups)
	for _, st := range snap.Stripes() {
		pl, err := BindGroupScan(st.Table(), req)
		if err != nil {
			return nil, err
		}
		if g, err = pl.RangeInto(0, st.Rows(), g); err != nil {
			return nil, err
		}
	}
	return FinalizeGroups(req.Op, g, len(req.GroupBy)), nil
}
