// Package table implements the columnar fact table the GPU side of the
// hybrid OLAP system operates on (paper Fig. 6): a 1-D array memory
// structure "placing all columns of the table one after another", holding
//
//   - dimension columns — one integer column per (dimension, level) pair,
//     used for filtration during query processing;
//   - data columns — the measures that get aggregated;
//   - text columns — dictionary-encoded to integer codes so no string ever
//     reaches GPU memory (Sec. III-F).
//
// Every level of a dimension hierarchy (e.g. year → month → day → hour) is
// its own column, so a condition C_L(f, t, l_K) addresses exactly one
// column, and the number of conditions in a decomposed query Q_D equals the
// number of columns the scan must read (eq. 12).
package table

import (
	"fmt"

	"hybridolap/internal/dict"
)

// LevelSpec describes one resolution level of a dimension hierarchy.
// Cardinality is the number of distinct coordinates at this level; levels
// must be ordered coarse → fine with nondecreasing cardinality, and each
// finer cardinality must be a multiple of its parent so that roll-ups are
// exact (a month always belongs to exactly one year).
type LevelSpec struct {
	Name        string
	Cardinality int
}

// DimensionSpec describes a dimension and its hierarchy of levels.
type DimensionSpec struct {
	Name   string
	Levels []LevelSpec
}

// Finest returns the index of the finest (last) level.
func (d DimensionSpec) Finest() int { return len(d.Levels) - 1 }

// MeasureSpec describes one data (measure) column.
type MeasureSpec struct {
	Name string
}

// TextSpec describes one dictionary-encoded text column.
type TextSpec struct {
	Name string
}

// Schema is the static description of a fact table.
type Schema struct {
	Dimensions []DimensionSpec
	Measures   []MeasureSpec
	Texts      []TextSpec
}

// Validate checks the structural invariants the rest of the system relies
// on: nonempty hierarchies, positive cardinalities, coarse→fine ordering
// with exact multiples, and unique names.
func (s *Schema) Validate() error {
	if len(s.Dimensions) == 0 {
		return fmt.Errorf("table: schema needs at least one dimension")
	}
	names := make(map[string]bool)
	claim := func(n string) error {
		if n == "" {
			return fmt.Errorf("table: empty column name")
		}
		if names[n] {
			return fmt.Errorf("table: duplicate name %q", n)
		}
		names[n] = true
		return nil
	}
	for _, d := range s.Dimensions {
		if err := claim(d.Name); err != nil {
			return err
		}
		if len(d.Levels) == 0 {
			return fmt.Errorf("table: dimension %q has no levels", d.Name)
		}
		prev := 0
		for i, l := range d.Levels {
			if err := claim(d.Name + "." + l.Name); err != nil {
				return err
			}
			if l.Cardinality <= 0 {
				return fmt.Errorf("table: dimension %q level %q has cardinality %d",
					d.Name, l.Name, l.Cardinality)
			}
			if i > 0 {
				if l.Cardinality < prev {
					return fmt.Errorf("table: dimension %q levels must be coarse to fine", d.Name)
				}
				if l.Cardinality%prev != 0 {
					return fmt.Errorf("table: dimension %q level %q cardinality %d is not a multiple of parent %d",
						d.Name, l.Name, l.Cardinality, prev)
				}
			}
			prev = l.Cardinality
		}
	}
	for _, m := range s.Measures {
		if err := claim(m.Name); err != nil {
			return err
		}
	}
	for _, t := range s.Texts {
		if err := claim(t.Name); err != nil {
			return err
		}
	}
	return nil
}

// NumDimensionColumns returns the total number of (dimension, level)
// columns: the filtration columns of the paper's model.
func (s *Schema) NumDimensionColumns() int {
	n := 0
	for _, d := range s.Dimensions {
		n += len(d.Levels)
	}
	return n
}

// TotalColumns is C_TOTAL in eq. (13): every column the table stores.
func (s *Schema) TotalColumns() int {
	return s.NumDimensionColumns() + len(s.Measures) + len(s.Texts)
}

// DimIndex returns the index of the named dimension, or -1.
func (s *Schema) DimIndex(name string) int {
	for i, d := range s.Dimensions {
		if d.Name == name {
			return i
		}
	}
	return -1
}

// MeasureIndex returns the index of the named measure, or -1.
func (s *Schema) MeasureIndex(name string) int {
	for i, m := range s.Measures {
		if m.Name == name {
			return i
		}
	}
	return -1
}

// TextIndex returns the index of the named text column, or -1.
func (s *Schema) TextIndex(name string) int {
	for i, t := range s.Texts {
		if t.Name == name {
			return i
		}
	}
	return -1
}

// LevelCardinality returns the cardinality of dimension dim at level lvl.
func (s *Schema) LevelCardinality(dim, lvl int) int {
	return s.Dimensions[dim].Levels[lvl].Cardinality
}

// reexport so callers of table don't need to import dict for the common case.
type Dictionaries = dict.Set
