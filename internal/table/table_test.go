package table

import (
	"math"
	"testing"
	"testing/quick"
)

func smallSchema() Schema {
	return Schema{
		Dimensions: []DimensionSpec{
			{Name: "time", Levels: []LevelSpec{
				{Name: "year", Cardinality: 2},
				{Name: "month", Cardinality: 24},
			}},
			{Name: "geo", Levels: []LevelSpec{
				{Name: "region", Cardinality: 4},
			}},
		},
		Measures: []MeasureSpec{{Name: "sales"}},
		Texts:    []TextSpec{{Name: "city"}},
	}
}

func TestSchemaValidate(t *testing.T) {
	s := smallSchema()
	if err := s.Validate(); err != nil {
		t.Fatalf("valid schema rejected: %v", err)
	}
	bad := []Schema{
		{}, // no dimensions
		{Dimensions: []DimensionSpec{{Name: "d"}}},                                                                                                                   // no levels
		{Dimensions: []DimensionSpec{{Name: "d", Levels: []LevelSpec{{Name: "l", Cardinality: 0}}}}},                                                                 // zero card
		{Dimensions: []DimensionSpec{{Name: "d", Levels: []LevelSpec{{Name: "a", Cardinality: 4}, {Name: "b", Cardinality: 2}}}}},                                    // fine < coarse
		{Dimensions: []DimensionSpec{{Name: "d", Levels: []LevelSpec{{Name: "a", Cardinality: 4}, {Name: "b", Cardinality: 6}}}}},                                    // not multiple
		{Dimensions: []DimensionSpec{{Name: "d", Levels: []LevelSpec{{Name: "l", Cardinality: 2}}}, {Name: "d", Levels: []LevelSpec{{Name: "l2", Cardinality: 2}}}}}, // dup dim
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad schema %d accepted", i)
		}
	}
}

func TestSchemaColumnCounts(t *testing.T) {
	s := smallSchema()
	if got := s.NumDimensionColumns(); got != 3 {
		t.Fatalf("NumDimensionColumns = %d, want 3", got)
	}
	if got := s.TotalColumns(); got != 5 { // 3 dim-level + 1 measure + 1 text
		t.Fatalf("TotalColumns = %d, want 5", got)
	}
	if s.DimIndex("geo") != 1 || s.DimIndex("nope") != -1 {
		t.Fatal("DimIndex wrong")
	}
	if s.MeasureIndex("sales") != 0 || s.MeasureIndex("nope") != -1 {
		t.Fatal("MeasureIndex wrong")
	}
	if s.TextIndex("city") != 0 || s.TextIndex("nope") != -1 {
		t.Fatal("TextIndex wrong")
	}
}

func TestBuilderRollup(t *testing.T) {
	b, err := NewBuilder(smallSchema())
	if err != nil {
		t.Fatal(err)
	}
	rows := []Row{
		{Coords: []int{0, 0}, Measures: []float64{10}, Texts: []string{"boston"}},
		{Coords: []int{11, 1}, Measures: []float64{20}, Texts: []string{"austin"}},
		{Coords: []int{12, 2}, Measures: []float64{30}, Texts: []string{"boston"}},
		{Coords: []int{23, 3}, Measures: []float64{40}, Texts: []string{"chicago"}},
	}
	for _, r := range rows {
		if err := b.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	ft, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if ft.Rows() != 4 {
		t.Fatalf("Rows = %d", ft.Rows())
	}
	// month 0,11 -> year 0; month 12,23 -> year 1 (ratio 24/2 = 12).
	years := ft.DimLevelColumn(0, 0)
	want := []uint32{0, 0, 1, 1}
	for i := range want {
		if years[i] != want[i] {
			t.Fatalf("year column %v, want %v", years, want)
		}
	}
	months := ft.DimLevelColumn(0, 1)
	if months[1] != 11 || months[3] != 23 {
		t.Fatalf("month column %v", months)
	}
	// Text codes: austin=0, boston=1, chicago=2 (sorted assignment).
	codes := ft.TextColumn(0)
	wantCodes := []uint32{1, 0, 1, 2}
	for i := range wantCodes {
		if codes[i] != wantCodes[i] {
			t.Fatalf("text codes %v, want %v", codes, wantCodes)
		}
	}
	if d, ok := ft.Dicts().Get("city"); !ok || d.Len() != 3 {
		t.Fatal("city dictionary missing or wrong size")
	}
}

func TestBuilderRejectsBadRows(t *testing.T) {
	b, _ := NewBuilder(smallSchema())
	cases := []Row{
		{Coords: []int{0}, Measures: []float64{1}, Texts: []string{"x"}},     // short coords
		{Coords: []int{0, 0}, Measures: nil, Texts: []string{"x"}},           // short measures
		{Coords: []int{0, 0}, Measures: []float64{1}, Texts: nil},            // short texts
		{Coords: []int{24, 0}, Measures: []float64{1}, Texts: []string{"x"}}, // coord out of range
		{Coords: []int{-1, 0}, Measures: []float64{1}, Texts: []string{"x"}}, // negative coord
	}
	for i, r := range cases {
		if err := b.Append(r); err == nil {
			t.Errorf("bad row %d accepted", i)
		}
	}
	if b.Rows() != 0 {
		t.Fatalf("builder recorded %d rows from rejected appends", b.Rows())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := GenSpec{Schema: smallSchema(), Rows: 500, Seed: 99}
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows() != 500 || b.Rows() != 500 {
		t.Fatal("wrong row counts")
	}
	for r := 0; r < a.Rows(); r++ {
		if a.CoordAt(r, 0, 1) != b.CoordAt(r, 0, 1) || a.MeasureColumn(0)[r] != b.MeasureColumn(0)[r] {
			t.Fatalf("generation not deterministic at row %d", r)
		}
	}
}

func TestGenerateHierarchyConsistency(t *testing.T) {
	ft, err := Generate(GenSpec{Schema: PaperSchema(), Rows: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := ft.Schema()
	for d, dim := range s.Dimensions {
		finest := dim.Finest()
		for l := 0; l < finest; l++ {
			ratio := uint32(dim.Levels[finest].Cardinality / dim.Levels[l].Cardinality)
			for r := 0; r < ft.Rows(); r++ {
				if ft.CoordAt(r, d, l) != ft.CoordAt(r, d, finest)/ratio {
					t.Fatalf("dim %d level %d row %d: rollup inconsistent", d, l, r)
				}
			}
		}
	}
}

func TestSizeBytes(t *testing.T) {
	ft, _ := Generate(GenSpec{Schema: smallSchema(), Rows: 100, Seed: 1})
	// 3 dim-level cols + 1 text col = 4 code columns * 4B + 1 measure * 8B.
	want := int64(100 * (4*4 + 8))
	if got := ft.SizeBytes(); got != want {
		t.Fatalf("SizeBytes = %d, want %d", got, want)
	}
}

func TestScanSumAndCount(t *testing.T) {
	b, _ := NewBuilder(smallSchema())
	data := []struct {
		month, region int
		sales         float64
		city          string
	}{
		{0, 0, 10, "a"}, {5, 1, 20, "b"}, {12, 2, 30, "a"}, {23, 3, 40, "c"},
	}
	for _, d := range data {
		if err := b.Append(Row{Coords: []int{d.month, d.region}, Measures: []float64{d.sales}, Texts: []string{d.city}}); err != nil {
			t.Fatal(err)
		}
	}
	ft, _ := b.Build()

	// Sum of sales for year == 0 (months 0..11): rows 0 and 1.
	req := ScanRequest{
		Predicates: []RangePredicate{{Dim: 0, Level: 0, From: 0, To: 0}},
		Measure:    0, Op: AggSum,
	}
	res, err := Scan(ft, req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 30 || res.Rows != 2 {
		t.Fatalf("sum = (%v,%d), want (30,2)", res.Value, res.Rows)
	}

	// Count with no predicates = all rows.
	res, err = Scan(ft, ScanRequest{Op: AggCount})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 4 || res.Rows != 4 {
		t.Fatalf("count = (%v,%d), want (4,4)", res.Value, res.Rows)
	}

	// Text predicate: city == "a" (code 0).
	res, err = Scan(ft, ScanRequest{
		Predicates: []RangePredicate{{Text: true, TextIndex: 0, From: 0, To: 0}},
		Measure:    0, Op: AggSum,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 40 || res.Rows != 2 {
		t.Fatalf("text sum = (%v,%d), want (40,2)", res.Value, res.Rows)
	}
}

func TestScanMinMaxAvg(t *testing.T) {
	b, _ := NewBuilder(smallSchema())
	for i, v := range []float64{5, 1, 9, 3} {
		if err := b.Append(Row{Coords: []int{i, 0}, Measures: []float64{v}, Texts: []string{"x"}}); err != nil {
			t.Fatal(err)
		}
	}
	ft, _ := b.Build()
	for _, c := range []struct {
		op   AggOp
		want float64
	}{{AggMin, 1}, {AggMax, 9}, {AggAvg, 4.5}, {AggSum, 18}} {
		res, err := Scan(ft, ScanRequest{Measure: 0, Op: c.op})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Value-c.want) > 1e-12 {
			t.Errorf("%v = %v, want %v", c.op, res.Value, c.want)
		}
	}
}

func TestScanEmptySelection(t *testing.T) {
	ft, _ := Generate(GenSpec{Schema: smallSchema(), Rows: 50, Seed: 3})
	res, err := Scan(ft, ScanRequest{
		Predicates: []RangePredicate{{Dim: 0, Level: 1, From: 100, To: 200}}, // beyond cardinality
		Measure:    0, Op: AggMin,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 0 || res.Value != 0 {
		t.Fatalf("empty selection = (%v,%d)", res.Value, res.Rows)
	}
}

func TestScanErrors(t *testing.T) {
	ft, _ := Generate(GenSpec{Schema: smallSchema(), Rows: 10, Seed: 3})
	cases := []ScanRequest{
		{Measure: 5, Op: AggSum},
		{Predicates: []RangePredicate{{Dim: 9, Level: 0}}, Op: AggCount},
		{Predicates: []RangePredicate{{Dim: 0, Level: 9}}, Op: AggCount},
		{Predicates: []RangePredicate{{Text: true, TextIndex: 9}}, Op: AggCount},
	}
	for i, req := range cases {
		if _, err := Scan(ft, req); err == nil {
			t.Errorf("bad request %d accepted", i)
		}
	}
	if _, err := ScanRange(ft, ScanRequest{Op: AggCount}, 5, 2); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := ScanRange(ft, ScanRequest{Op: AggCount}, 0, 99); err == nil {
		t.Error("out-of-bounds range accepted")
	}
}

// Property: splitting a scan into stripes and merging equals the full scan,
// for every op. This is the invariant the GPU simulator's parallel
// reduction relies on.
func TestMergeEquivalenceProperty(t *testing.T) {
	ft, err := Generate(GenSpec{Schema: PaperSchema(), Rows: 3000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	f := func(fromRaw, widthRaw uint16, opRaw uint8, split uint8) bool {
		op := AggOp(int(opRaw) % 5)
		card := uint32(ft.Schema().LevelCardinality(0, 1))
		from := uint32(fromRaw) % card
		to := from + uint32(widthRaw)%card
		req := ScanRequest{
			Predicates: []RangePredicate{{Dim: 0, Level: 1, From: from, To: to}},
			Measure:    0, Op: op,
		}
		whole, err := Scan(ft, req)
		if err != nil {
			return false
		}
		n := int(split)%7 + 2
		var acc ScanResult
		stripe := (ft.Rows() + n - 1) / n
		for lo := 0; lo < ft.Rows(); lo += stripe {
			hi := lo + stripe
			if hi > ft.Rows() {
				hi = ft.Rows()
			}
			part, err := ScanRange(ft, req, lo, hi)
			if err != nil {
				return false
			}
			acc = Merge(op, acc, part)
		}
		acc = Finalize(op, acc)
		return acc.Rows == whole.Rows && math.Abs(acc.Value-whole.Value) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestColumnsAccessed(t *testing.T) {
	req := ScanRequest{
		Predicates: []RangePredicate{{Dim: 0, Level: 0}, {Dim: 1, Level: 0}},
		Op:         AggSum,
	}
	if got := req.ColumnsAccessed(); got != 3 {
		t.Fatalf("ColumnsAccessed = %d, want 3 (2 filters + 1 measure)", got)
	}
	req.Op = AggCount
	if got := req.ColumnsAccessed(); got != 2 {
		t.Fatalf("count ColumnsAccessed = %d, want 2", got)
	}
}

func TestAggOpString(t *testing.T) {
	for op, want := range map[AggOp]string{AggSum: "sum", AggCount: "count", AggMin: "min", AggMax: "max", AggAvg: "avg"} {
		if op.String() != want {
			t.Errorf("%d.String() = %q", int(op), op.String())
		}
	}
}

func BenchmarkScan1M(b *testing.B) {
	ft, err := Generate(GenSpec{Schema: PaperSchema(), Rows: 1_000_000, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	req := ScanRequest{
		Predicates: []RangePredicate{
			{Dim: 0, Level: 1, From: 0, To: 23},
			{Dim: 1, Level: 0, From: 0, To: 3},
		},
		Measure: 0, Op: AggSum,
	}
	b.SetBytes(int64(12 * ft.Rows())) // two code columns + one measure
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Scan(ft, req); err != nil {
			b.Fatal(err)
		}
	}
}
