package table

import (
	"fmt"
	"math/rand"
	"testing"
)

// The differential property suite: the vectorized ScanPlan/GroupScanPlan
// kernels must agree *exactly* — bit-identical values, not epsilon-close —
// with the row-at-a-time reference kernels, across random tables,
// predicate shapes, ops and stripe boundaries. The kernels are built to
// visit rows in the same order and accumulate floats in the same order,
// so == comparison is the specification, not an approximation.

func diffSchema() Schema {
	return Schema{
		Dimensions: []DimensionSpec{
			{Name: "time", Levels: []LevelSpec{
				{Name: "year", Cardinality: 4},
				{Name: "month", Cardinality: 48},
			}},
			{Name: "geo", Levels: []LevelSpec{
				{Name: "region", Cardinality: 6},
				{Name: "city", Cardinality: 60},
			}},
			{Name: "product", Levels: []LevelSpec{
				{Name: "category", Cardinality: 10},
			}},
		},
		Measures: []MeasureSpec{{Name: "sales"}, {Name: "qty"}},
		Texts:    []TextSpec{{Name: "note"}},
	}
}

// diffTables builds the shared table set once: sizes straddle every batch
// boundary (0, 1, BatchSize±1, several batches plus a tail).
func diffTables(t testing.TB) []*FactTable {
	t.Helper()
	sizes := []int{0, 1, 37, BatchSize - 1, BatchSize, BatchSize + 1, 3*BatchSize + 213}
	pool := make([]string, 30)
	for i := range pool {
		pool[i] = fmt.Sprintf("note-%02d", i)
	}
	out := make([]*FactTable, len(sizes))
	for i, n := range sizes {
		ft, err := Generate(GenSpec{
			Schema:    diffSchema(),
			Rows:      n,
			Seed:      int64(100 + i),
			TextPools: [][]string{pool},
		})
		if err != nil {
			t.Fatal(err)
		}
		out[i] = ft
	}
	return out
}

// randPred draws one predicate of a random shape:
//
//	plain range  — including inverted (zero-match) ranges,
//	range + Or   — overlapping intervals, some inverted, over dim levels,
//	points       — the translated text IN-list shape (all single codes).
func randPred(rng *rand.Rand, s *Schema) RangePredicate {
	var p RangePredicate
	card := 0
	switch rng.Intn(4) {
	case 0: // text column
		p.Text = true
		p.TextIndex = 0
		card = 30
	default:
		p.Dim = rng.Intn(len(s.Dimensions))
		p.Level = rng.Intn(len(s.Dimensions[p.Dim].Levels))
		card = s.LevelCardinality(p.Dim, p.Level)
	}
	shape := rng.Intn(3)
	switch {
	case shape == 0: // plain range, sometimes inverted (matches nothing)
		if rng.Intn(8) == 0 {
			p.From = uint32(rng.Intn(card)) + 1
			p.To = p.From - 1 // inverted
			return p
		}
		a, b := uint32(rng.Intn(card)), uint32(rng.Intn(card))
		if a > b {
			a, b = b, a
		}
		p.From, p.To = a, b
	case shape == 1: // range + Or intervals, overlaps allowed
		a, b := uint32(rng.Intn(card)), uint32(rng.Intn(card))
		if a > b {
			a, b = b, a
		}
		p.From, p.To = a, b
		for i, k := 0, rng.Intn(3)+1; i < k; i++ {
			c, d := uint32(rng.Intn(card)), uint32(rng.Intn(card))
			if rng.Intn(4) != 0 && c > d {
				c, d = d, c // leave some inverted Or intervals in place
			}
			p.Or = append(p.Or, CodeRange{From: c, To: d})
		}
	default: // points: IN-list of single codes
		p.From = uint32(rng.Intn(card))
		p.To = p.From
		for i, k := 0, rng.Intn(4); i < k; i++ {
			c := uint32(rng.Intn(card))
			p.Or = append(p.Or, CodeRange{From: c, To: c})
		}
	}
	return p
}

func randScanReq(rng *rand.Rand, s *Schema) ScanRequest {
	req := ScanRequest{
		Op:      AggOp(rng.Intn(5)),
		Measure: rng.Intn(len(s.Measures)),
	}
	for i, k := 0, rng.Intn(4); i < k; i++ {
		req.Predicates = append(req.Predicates, randPred(rng, s))
	}
	return req
}

// randStripe draws a [lo, hi) stripe biased toward the interesting edges:
// empty stripes, the full table, and batch-boundary-straddling cuts.
func randStripe(rng *rand.Rand, rows int) (int, int) {
	switch rng.Intn(5) {
	case 0:
		return 0, rows
	case 1:
		lo := rng.Intn(rows + 1)
		return lo, lo // empty
	default:
		lo := rng.Intn(rows + 1)
		hi := lo + rng.Intn(rows-lo+1)
		return lo, hi
	}
}

func TestScanPlanDifferential(t *testing.T) {
	tables := diffTables(t)
	rng := rand.New(rand.NewSource(42))
	schema := diffSchema()
	for i := 0; i < 1200; i++ {
		ft := tables[rng.Intn(len(tables))]
		req := randScanReq(rng, &schema)
		lo, hi := randStripe(rng, ft.Rows())

		want, wantErr := ScanRange(ft, req, lo, hi)
		plan, err := BindScan(ft, req)
		if err != nil {
			t.Fatalf("case %d: BindScan: %v", i, err)
		}
		got, gotErr := plan.Range(lo, hi)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("case %d: error mismatch: ref=%v vec=%v", i, wantErr, gotErr)
		}
		if wantErr != nil {
			continue
		}
		if got != want {
			t.Fatalf("case %d: req=%+v stripe=[%d,%d) rows=%d\nref=%+v\nvec=%+v",
				i, req, lo, hi, ft.Rows(), want, got)
		}
	}
}

// TestScanPlanMinMaxZeroMatchStripes pins the acceptance case: min/max
// over stripes in which no row passes must agree with the reference,
// including the Rows==0 partial whose Value merges away.
func TestScanPlanMinMaxZeroMatchStripes(t *testing.T) {
	ft := diffTables(t)[4] // BatchSize rows
	for _, op := range []AggOp{AggMin, AggMax} {
		req := ScanRequest{
			Op: op,
			// Inverted range: matches no row at all.
			Predicates: []RangePredicate{{Dim: 0, Level: 0, From: 3, To: 2}},
		}
		want, err := ScanRange(ft, req, 0, ft.Rows())
		if err != nil {
			t.Fatal(err)
		}
		plan, err := BindScan(ft, req)
		if err != nil {
			t.Fatal(err)
		}
		got, err := plan.Range(0, ft.Rows())
		if err != nil {
			t.Fatal(err)
		}
		if got != want || got.Rows != 0 {
			t.Fatalf("op %v zero-match: ref=%+v vec=%+v", op, want, got)
		}
		// And a zero-match stripe merged with a matching stripe.
		req.Predicates[0] = RangePredicate{Dim: 0, Level: 1, From: 0, To: 0}
		wantA, _ := ScanRange(ft, req, 0, 10)
		planB, err := BindScan(ft, req)
		if err != nil {
			t.Fatal(err)
		}
		gotA, _ := planB.Range(0, 10)
		wantB, _ := ScanRange(ft, req, 10, ft.Rows())
		gotB, _ := planB.Range(10, ft.Rows())
		if Merge(op, wantA, wantB) != Merge(op, gotA, gotB) {
			t.Fatalf("op %v stripe merge mismatch", op)
		}
	}
}

func TestScanPlanValidationMatchesReference(t *testing.T) {
	ft := diffTables(t)[2]
	bad := []ScanRequest{
		{Op: AggSum, Measure: 99},
		{Op: AggSum, Predicates: []RangePredicate{{Dim: 9}}},
		{Op: AggSum, Predicates: []RangePredicate{{Dim: 0, Level: 9}}},
		{Op: AggSum, Predicates: []RangePredicate{{Text: true, TextIndex: 5}}},
	}
	for i, req := range bad {
		if _, err := BindScan(ft, req); err == nil {
			t.Errorf("bad request %d: BindScan accepted it", i)
		}
		if _, err := ScanRange(ft, req, 0, ft.Rows()); err == nil {
			t.Errorf("bad request %d: ScanRange accepted it", i)
		}
	}
	// Range bounds are checked per call, like ScanRange.
	plan, err := BindScan(ft, ScanRequest{Op: AggCount})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Range(-1, 3); err == nil {
		t.Error("negative lo accepted")
	}
	if _, err := plan.Range(0, ft.Rows()+1); err == nil {
		t.Error("hi past table accepted")
	}
}

// TestScanPlanSelectivityOrdering checks the ordering rule: the most
// selective predicate seeds the selection vector.
func TestScanPlanSelectivityOrdering(t *testing.T) {
	ft := diffTables(t)[3]
	req := ScanRequest{
		Op:      AggSum,
		Measure: 0,
		Predicates: []RangePredicate{
			{Dim: 0, Level: 1, From: 0, To: 23}, // ~50% of 48 months
			{Dim: 1, Level: 1, From: 0, To: 5},  // ~10% of 60 cities
			{Dim: 2, Level: 0, From: 0, To: 8},  // ~90% of 10 categories
		},
	}
	plan, err := BindScan(ft, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.preds) != 3 {
		t.Fatalf("bound %d predicates", len(plan.preds))
	}
	for i := 1; i < len(plan.preds); i++ {
		if plan.preds[i-1].sel > plan.preds[i].sel {
			t.Fatalf("predicates not selectivity-ordered: %v then %v",
				plan.preds[i-1].sel, plan.preds[i].sel)
		}
	}
	if plan.preds[0].sel > 0.2 {
		t.Fatalf("most selective predicate (10%%) should seed; got sel=%v", plan.preds[0].sel)
	}
}

func groupsEqual(a, b Groups) bool {
	if len(a) != len(b) {
		return false
	}
	for k, va := range a {
		vb, ok := b[k]
		if !ok || va != vb {
			return false
		}
	}
	return true
}

func randGroupReq(rng *rand.Rand, s *Schema) GroupScanRequest {
	req := GroupScanRequest{ScanRequest: randScanReq(rng, s)}
	n := rng.Intn(2) + 1
	for i := 0; i < n; i++ {
		if rng.Intn(4) == 0 {
			req.GroupBy = append(req.GroupBy, GroupCol{Text: true, TextIndex: 0})
			continue
		}
		d := rng.Intn(len(s.Dimensions))
		req.GroupBy = append(req.GroupBy, GroupCol{Dim: d, Level: rng.Intn(len(s.Dimensions[d].Levels))})
	}
	return req
}

func TestGroupScanPlanDifferential(t *testing.T) {
	tables := diffTables(t)
	rng := rand.New(rand.NewSource(43))
	schema := diffSchema()
	for i := 0; i < 1000; i++ {
		ft := tables[rng.Intn(len(tables))]
		req := randGroupReq(rng, &schema)
		lo, hi := randStripe(rng, ft.Rows())

		want, wantErr := GroupScanRange(ft, req, lo, hi)
		plan, planErr := BindGroupScan(ft, req)
		if (wantErr == nil) != (planErr == nil) {
			t.Fatalf("case %d: error mismatch: ref=%v bind=%v", i, wantErr, planErr)
		}
		if wantErr != nil {
			continue
		}
		got, err := plan.RangeInto(lo, hi, nil)
		if err != nil {
			t.Fatalf("case %d: RangeInto: %v", i, err)
		}
		if !groupsEqual(want, got) {
			t.Fatalf("case %d: req=%+v stripe=[%d,%d)\nref=%v\nvec=%v", i, req, lo, hi, want, got)
		}
	}
}

// TestGroupScanPlanStripeAccumulation proves RangeInto over consecutive
// stripes into one map is bit-identical to a single reference scan over
// their union — the substitution gpusim's per-SM loop makes. (It is NOT
// compared against MergeGroups of per-stripe partials: merging partial
// float sums rounds differently than one continuous accumulation, which
// is exactly why the per-SM loop now accumulates instead of merging.)
func TestGroupScanPlanStripeAccumulation(t *testing.T) {
	tables := diffTables(t)
	rng := rand.New(rand.NewSource(44))
	schema := diffSchema()
	for i := 0; i < 200; i++ {
		ft := tables[rng.Intn(len(tables))]
		if ft.Rows() == 0 {
			continue
		}
		req := randGroupReq(rng, &schema)
		plan, err := BindGroupScan(ft, req)
		if err != nil {
			continue
		}
		// Cut the table into 1-4 stripes.
		cuts := []int{0}
		for k, n := 0, rng.Intn(3); k < n; k++ {
			cuts = append(cuts, rng.Intn(ft.Rows()+1))
		}
		cuts = append(cuts, ft.Rows())
		for a := 1; a < len(cuts); a++ {
			for b := a; b > 0 && cuts[b-1] > cuts[b]; b-- {
				cuts[b-1], cuts[b] = cuts[b], cuts[b-1]
			}
		}
		var acc Groups
		for s := 1; s < len(cuts); s++ {
			acc, err = plan.RangeInto(cuts[s-1], cuts[s], acc)
			if err != nil {
				t.Fatal(err)
			}
		}
		ref, err := GroupScanRange(ft, req, cuts[0], cuts[len(cuts)-1])
		if err != nil {
			t.Fatal(err)
		}
		if !groupsEqual(ref, acc) {
			t.Fatalf("case %d: stripe accumulation diverged\nref=%v\nvec=%v", i, ref, acc)
		}
	}
}

// raceEnabled is set by race_enabled_test.go under -race, where the
// detector's instrumentation (and sync.Pool's race hooks) make
// AllocsPerRun meaningless.
var raceEnabled = false

// TestScanPlanSteadyStateAllocs pins the zero-allocation property of the
// vectorized scan loop (the pooled scratch makes Range allocation-free
// after warmup).
func TestScanPlanSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	ft := diffTables(t)[6]
	plan, err := BindScan(ft, ScanRequest{
		Op:      AggSum,
		Measure: 0,
		Predicates: []RangePredicate{
			{Dim: 0, Level: 1, From: 0, To: 20},
			{Dim: 1, Level: 1, From: 0, To: 30},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Warm the scratch pool.
	if _, err := plan.Range(0, ft.Rows()); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := plan.Range(0, ft.Rows()); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Range allocates %v objects/op; want 0", allocs)
	}
}
