package table

import "fmt"

// CodeRange is one inclusive code interval of a disjunctive predicate.
type CodeRange struct {
	From, To uint32
}

// RangePredicate filters one column of the table to codes in [From, To]
// (inclusive), mirroring the paper's condition C_L(f, t, l_K): "the thread
// checks to see if the tuple contains a value in the given range". A
// predicate may additionally carry Or ranges: the row passes when its code
// falls in [From, To] or in any Or interval — how IN-lists of dictionary
// codes are evaluated in a single column pass.
type RangePredicate struct {
	// Column selects the filtered column: a (dimension, level) pair when
	// Text is false, or the text column index when Text is true.
	Dim, Level int
	Text       bool
	TextIndex  int
	From, To   uint32
	// Or lists additional accepted intervals (disjunction with [From, To]).
	Or []CodeRange
}

// matches reports whether a code passes the predicate.
func (p *RangePredicate) matches(v uint32) bool {
	if v >= p.From && v <= p.To {
		return true
	}
	for _, r := range p.Or {
		if v >= r.From && v <= r.To {
			return true
		}
	}
	return false
}

// AggOp selects the aggregation applied to the measure column.
type AggOp int

const (
	AggSum AggOp = iota
	AggCount
	AggMin
	AggMax
	AggAvg
)

// String names the op.
func (op AggOp) String() string {
	switch op {
	case AggSum:
		return "sum"
	case AggCount:
		return "count"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggAvg:
		return "avg"
	default:
		return fmt.Sprintf("AggOp(%d)", int(op))
	}
}

// ScanRequest is a full table-scan aggregation: filter rows by every
// predicate, then aggregate one measure.
type ScanRequest struct {
	Predicates []RangePredicate
	Measure    int
	Op         AggOp
}

// ColumnsAccessed is C_QD in eq. (12): the number of filtration conditions
// plus the number of data columns processed (always 1 measure here, unless
// the op is a pure count, which needs no data column).
func (r ScanRequest) ColumnsAccessed() int {
	n := len(r.Predicates)
	if r.Op != AggCount {
		n++
	}
	return n
}

// ScanResult carries an aggregate and the number of matching rows.
type ScanResult struct {
	Value float64
	Rows  int64
}

// predCol resolves the code column a predicate filters.
func predCol(t *FactTable, p RangePredicate) []uint32 {
	if p.Text {
		return t.texts[p.TextIndex]
	}
	return t.dimLevels[p.Dim][p.Level]
}

// ScanRange runs the request sequentially over rows [lo, hi) and returns a
// partial result. It is the row-at-a-time reference kernel the vectorized
// ScanPlan is proven against; hot callers (the GPU simulator's per-stripe
// blocks) go through BindScan + (*ScanPlan).Range instead, which validates
// once per request rather than once per stripe.
func ScanRange(t *FactTable, req ScanRequest, lo, hi int) (ScanResult, error) {
	if lo < 0 || hi > t.rows || lo > hi {
		return ScanResult{}, fmt.Errorf("table: scan range [%d,%d) outside [0,%d)", lo, hi, t.rows)
	}
	if req.Op != AggCount {
		if req.Measure < 0 || req.Measure >= len(t.measures) {
			return ScanResult{}, fmt.Errorf("table: measure %d out of range", req.Measure)
		}
	}
	cols := make([][]uint32, len(req.Predicates))
	for i := range req.Predicates {
		if err := validatePred(t, &req.Predicates[i]); err != nil {
			return ScanResult{}, err
		}
		cols[i] = predCol(t, req.Predicates[i])
	}
	var meas []float64
	if req.Op != AggCount {
		meas = t.measures[req.Measure]
	}

	res := ScanResult{}
	switch req.Op {
	case AggMin:
		res.Value = 0 // set on first match
	case AggMax:
		res.Value = 0
	}
	first := true
rowLoop:
	for r := lo; r < hi; r++ {
		for i := range req.Predicates {
			p := &req.Predicates[i]
			v := cols[i][r]
			if len(p.Or) == 0 {
				if v < p.From || v > p.To {
					continue rowLoop
				}
			} else if !p.matches(v) {
				continue rowLoop
			}
		}
		res.Rows++
		switch req.Op {
		case AggSum, AggAvg:
			res.Value += meas[r]
		case AggCount:
			// rows counter is the value
		case AggMin:
			if first || meas[r] < res.Value {
				res.Value = meas[r]
			}
		case AggMax:
			if first || meas[r] > res.Value {
				res.Value = meas[r]
			}
		}
		first = false
	}
	return res, nil
}

// Scan runs the request over the whole table sequentially.
func Scan(t *FactTable, req ScanRequest) (ScanResult, error) {
	res, err := ScanRange(t, req, 0, t.rows)
	if err != nil {
		return ScanResult{}, err
	}
	return Finalize(req.Op, res), nil
}

// Merge combines two partial results of the same request (the parallel
// reduction step). Count/sum add; min/max compare; avg sums and divides in
// Finalize. The cluster coordinator folds every shard's chunk partials
// through this on the scalar hot path, so it must stay allocation-free.
//
//olaplint:noalloc
func Merge(op AggOp, a, b ScanResult) ScanResult {
	out := ScanResult{Rows: a.Rows + b.Rows}
	switch op {
	case AggSum, AggAvg, AggCount:
		out.Value = a.Value + b.Value
	case AggMin:
		switch {
		case a.Rows == 0:
			out.Value = b.Value
		case b.Rows == 0:
			out.Value = a.Value
		case b.Value < a.Value:
			out.Value = b.Value
		default:
			out.Value = a.Value
		}
	case AggMax:
		switch {
		case a.Rows == 0:
			out.Value = b.Value
		case b.Rows == 0:
			out.Value = a.Value
		case b.Value > a.Value:
			out.Value = b.Value
		default:
			out.Value = a.Value
		}
	}
	return out
}

// Finalize completes an aggregate: for avg it divides the accumulated sum
// by the row count; for count it reports the row count as the value.
//
//olaplint:noalloc
func Finalize(op AggOp, r ScanResult) ScanResult {
	switch op {
	case AggAvg:
		if r.Rows > 0 {
			r.Value /= float64(r.Rows)
		}
	case AggCount:
		r.Value = float64(r.Rows)
	}
	return r
}
