package table

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// stripeTable generates a small table with the diff schema.
func stripeTable(t *testing.T, rows int, seed int64) *FactTable {
	t.Helper()
	ft, err := Generate(GenSpec{Schema: diffSchema(), Rows: rows, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return ft
}

func TestRegistryPublishAppend(t *testing.T) {
	base := stripeTable(t, 100, 1)
	reg, err := NewRegistry(diffSchema(), base, nil)
	if err != nil {
		t.Fatal(err)
	}
	s0 := reg.Current()
	if s0.Epoch() != 0 || s0.Rows() != 100 || len(s0.Stripes()) != 1 {
		t.Fatalf("epoch0: epoch=%d rows=%d stripes=%d", s0.Epoch(), s0.Rows(), len(s0.Stripes()))
	}

	d1 := stripeTable(t, 10, 2)
	d2 := stripeTable(t, 20, 3)
	s1, err := reg.Publish([]*FactTable{d1, d2}, StripeDelta, nil, "aux1")
	if err != nil {
		t.Fatal(err)
	}
	if s1.Epoch() != 1 || s1.Rows() != 130 || s1.DeltaStripes() != 2 {
		t.Fatalf("epoch1: epoch=%d rows=%d deltas=%d", s1.Epoch(), s1.Rows(), s1.DeltaStripes())
	}
	if s1.Aux() != "aux1" {
		t.Fatalf("aux = %v", s1.Aux())
	}
	// The pinned older snapshot is untouched.
	if s0.Rows() != 100 || len(s0.Stripes()) != 1 {
		t.Fatal("published epoch mutated a pinned snapshot")
	}
	if reg.Current() != s1 {
		t.Fatal("Current should return the latest snapshot")
	}
}

func TestRegistryPublishSplice(t *testing.T) {
	base := stripeTable(t, 50, 1)
	reg, err := NewRegistry(diffSchema(), base, nil)
	if err != nil {
		t.Fatal(err)
	}
	var deltas []*FactTable
	for i := 0; i < 4; i++ {
		deltas = append(deltas, stripeTable(t, 10+i, int64(10+i)))
	}
	snap, err := reg.Publish(deltas, StripeDelta, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Compact the middle two deltas (IDs 2,3) into one merged stripe: it
	// must splice in at their position, keeping row order base,d0,M,d3.
	ids := []uint64{snap.Stripes()[2].ID(), snap.Stripes()[3].ID()}
	merged := stripeTable(t, 23, 99)
	s2, err := reg.Publish([]*FactTable{merged}, StripeBase, ids, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(s2.Stripes()) != 4 {
		t.Fatalf("stripes after compaction = %d, want 4", len(s2.Stripes()))
	}
	wantRows := []int{50, 10, 23, 13}
	for i, st := range s2.Stripes() {
		if st.Rows() != wantRows[i] {
			t.Fatalf("stripe %d rows = %d, want %d", i, st.Rows(), wantRows[i])
		}
	}
	if s2.Stripes()[2].Kind() != StripeBase {
		t.Fatal("merged stripe should be base kind")
	}
	if s2.DeltaStripes() != 2 {
		t.Fatalf("deltas = %d, want 2", s2.DeltaStripes())
	}

	// Removing an unknown ID fails and publishes nothing.
	if _, err := reg.Publish(nil, StripeBase, []uint64{12345}, nil); err == nil {
		t.Fatal("expected error for unknown stripe ID")
	}
	if reg.Current() != s2 {
		t.Fatal("failed publish must not advance the epoch")
	}
}

func TestRegistrySchemaMismatch(t *testing.T) {
	base := stripeTable(t, 10, 1)
	reg, err := NewRegistry(diffSchema(), base, nil)
	if err != nil {
		t.Fatal(err)
	}
	other := Schema{
		Dimensions: []DimensionSpec{{Name: "d", Levels: []LevelSpec{{Name: "l", Cardinality: 4}}}},
		Measures:   []MeasureSpec{{Name: "m"}},
	}
	ft, err := Generate(GenSpec{Schema: other, Rows: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Publish([]*FactTable{ft}, StripeDelta, nil, nil); err == nil {
		t.Fatal("expected schema mismatch error")
	}
}

// TestRangeFromChaining: splitting a scan at arbitrary points and chaining
// RangeFrom must be bit-identical to one Range over the whole span.
func TestRangeFromChaining(t *testing.T) {
	ft := stripeTable(t, 3*BatchSize+217, 7)
	rng := rand.New(rand.NewSource(11))
	reqs := []ScanRequest{
		{Op: AggSum, Measure: 0, Predicates: []RangePredicate{{Dim: 0, Level: 1, From: 5, To: 30}}},
		{Op: AggMin, Measure: 1, Predicates: []RangePredicate{{Dim: 1, Level: 0, From: 1, To: 4}}},
		{Op: AggMax, Measure: 0},
		{Op: AggAvg, Measure: 1, Predicates: []RangePredicate{{Dim: 2, Level: 0, From: 0, To: 6}}},
		{Op: AggCount, Predicates: []RangePredicate{{Dim: 0, Level: 0, From: 1, To: 2}}},
	}
	for ri, req := range reqs {
		pl, err := BindScan(ft, req)
		if err != nil {
			t.Fatal(err)
		}
		want, err := pl.Range(0, ft.Rows())
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 20; trial++ {
			// Random sorted cut points, duplicates allowed (empty segments).
			cuts := []int{0, ft.Rows()}
			for len(cuts) < 6 {
				cuts = append(cuts, rng.Intn(ft.Rows()+1))
			}
			sort.Ints(cuts)
			acc := ScanResult{}
			for i := 0; i+1 < len(cuts); i++ {
				if acc, err = pl.RangeFrom(acc, cuts[i], cuts[i+1]); err != nil {
					t.Fatal(err)
				}
			}
			if acc.Rows != want.Rows || math.Float64bits(acc.Value) != math.Float64bits(want.Value) {
				t.Fatalf("req %d trial %d: chained %+v != whole %+v", ri, trial, acc, want)
			}
		}
	}
}

// TestScanSnapshotMatchesRebuild: scanning a snapshot of several stripes
// must be bit-identical to scanning one table holding the same rows.
func TestScanSnapshotMatchesRebuild(t *testing.T) {
	schema := diffSchema()
	whole := stripeTable(t, 2*BatchSize+331, 21)

	// Split the whole table's rows into stripes at fixed cut points using
	// FromColumns, sharing the whole table's dictionary set so text codes
	// agree.
	cuts := []int{0, 17, 17, BatchSize + 5, whole.Rows()}
	var parts []*FactTable
	for i := 0; i+1 < len(cuts); i++ {
		lo, hi := cuts[i], cuts[i+1]
		coords := make([][]uint32, len(schema.Dimensions))
		for d, spec := range schema.Dimensions {
			coords[d] = whole.DimLevelColumn(d, spec.Finest())[lo:hi]
		}
		meas := make([][]float64, len(schema.Measures))
		for m := range schema.Measures {
			meas[m] = whole.MeasureColumn(m)[lo:hi]
		}
		texts := make([][]uint32, len(schema.Texts))
		for x := range schema.Texts {
			texts[x] = whole.TextColumn(x)[lo:hi]
		}
		ft, err := FromColumns(schema, coords, meas, texts, whole.Dicts())
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, ft)
	}

	reg, err := NewRegistry(schema, parts[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := reg.Publish(parts[1:], StripeDelta, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Rows() != whole.Rows() {
		t.Fatalf("snapshot rows = %d, want %d", snap.Rows(), whole.Rows())
	}

	reqs := []ScanRequest{
		{Op: AggSum, Measure: 0, Predicates: []RangePredicate{{Dim: 0, Level: 1, From: 3, To: 33}}},
		{Op: AggAvg, Measure: 1, Predicates: []RangePredicate{{Dim: 1, Level: 1, From: 10, To: 44}}},
		{Op: AggMin, Measure: 0},
		{Op: AggMax, Measure: 1, Predicates: []RangePredicate{{Dim: 2, Level: 0, From: 2, To: 8}}},
		{Op: AggCount, Predicates: []RangePredicate{{Text: true, TextIndex: 0, From: 3, To: 12}}},
	}
	for ri, req := range reqs {
		want, err := Scan(whole, req)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ScanSnapshot(snap, req)
		if err != nil {
			t.Fatal(err)
		}
		if got.Rows != want.Rows || math.Float64bits(got.Value) != math.Float64bits(want.Value) {
			t.Fatalf("req %d: snapshot %+v != rebuild %+v", ri, got, want)
		}
	}

	greqs := []GroupScanRequest{
		{ScanRequest: ScanRequest{Op: AggSum, Measure: 0},
			GroupBy: []GroupCol{{Dim: 0, Level: 0}}},
		{ScanRequest: ScanRequest{Op: AggAvg, Measure: 1,
			Predicates: []RangePredicate{{Dim: 0, Level: 1, From: 0, To: 40}}},
			GroupBy: []GroupCol{{Dim: 1, Level: 0}, {Dim: 2, Level: 0}}},
		{ScanRequest: ScanRequest{Op: AggCount},
			GroupBy: []GroupCol{{Text: true, TextIndex: 0}}},
	}
	for ri, req := range greqs {
		want, err := GroupScan(whole, req)
		if err != nil {
			t.Fatal(err)
		}
		got, err := GroupScanSnapshot(snap, req)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("greq %d: %d groups, want %d", ri, len(got), len(want))
		}
		for i := range got {
			if PackKey(got[i].Keys) != PackKey(want[i].Keys) || got[i].Rows != want[i].Rows ||
				math.Float64bits(got[i].Value) != math.Float64bits(want[i].Value) {
				t.Fatalf("greq %d group %d: %+v != %+v", ri, i, got[i], want[i])
			}
		}
	}
}
