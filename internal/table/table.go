package table

import (
	"fmt"

	"hybridolap/internal/dict"
)

// FactTable is an immutable columnar fact table. All dimension-level and
// text columns are uint32 codes; measures are float64. Columns are
// contiguous slices — the 1-D per-column layout the paper uses for maximum
// GPU memory bandwidth.
type FactTable struct {
	schema Schema
	rows   int

	// dimLevels[d][l] is the code column of dimension d at level l.
	dimLevels [][][]uint32
	measures  [][]float64
	texts     [][]uint32
	dicts     *dict.Set
}

// Schema returns the table's schema.
func (t *FactTable) Schema() *Schema { return &t.schema }

// Rows returns the number of tuples.
func (t *FactTable) Rows() int { return t.rows }

// Dicts returns the per-column dictionary set for text columns (nil when
// the table has no text columns).
func (t *FactTable) Dicts() *dict.Set { return t.dicts }

// DimLevelColumn returns the code column of (dimension, level).
func (t *FactTable) DimLevelColumn(dim, lvl int) []uint32 {
	return t.dimLevels[dim][lvl]
}

// MeasureColumn returns the data column of measure m.
func (t *FactTable) MeasureColumn(m int) []float64 { return t.measures[m] }

// TextColumn returns the encoded codes of text column i.
func (t *FactTable) TextColumn(i int) []uint32 { return t.texts[i] }

// SizeBytes returns the total size of all columns: 4 bytes per code cell
// and 8 per measure cell. This is the table footprint that must fit in the
// simulated GPU's global memory.
func (t *FactTable) SizeBytes() int64 {
	codes := int64(t.schema.NumDimensionColumns()+len(t.schema.Texts)) * int64(t.rows) * 4
	meas := int64(len(t.schema.Measures)) * int64(t.rows) * 8
	return codes + meas
}

// Builder assembles a FactTable row by row.
type Builder struct {
	schema   Schema
	dimCoord [][]uint32 // finest-level coordinate per dimension
	measures [][]float64
	textBldr []*dict.Builder
	textProv [][]dict.ID
	rows     int
}

// NewBuilder validates the schema and returns an empty builder.
func NewBuilder(schema Schema) (*Builder, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	b := &Builder{schema: schema}
	b.dimCoord = make([][]uint32, len(schema.Dimensions))
	b.measures = make([][]float64, len(schema.Measures))
	b.textBldr = make([]*dict.Builder, len(schema.Texts))
	b.textProv = make([][]dict.ID, len(schema.Texts))
	for i := range b.textBldr {
		b.textBldr[i] = dict.NewBuilder()
	}
	return b, nil
}

// Row is one input tuple for Builder.Append.
type Row struct {
	// Coords[d] is the coordinate in dimension d at its finest level.
	Coords []int
	// Measures[m] is the value of measure m.
	Measures []float64
	// Texts[i] is the raw string of text column i.
	Texts []string
}

// Append adds one tuple. Coarser-level coordinates are derived from the
// finest coordinate at build time (exact roll-up by integer division).
func (b *Builder) Append(r Row) error {
	if len(r.Coords) != len(b.schema.Dimensions) {
		return fmt.Errorf("table: row has %d coords, schema has %d dimensions",
			len(r.Coords), len(b.schema.Dimensions))
	}
	if len(r.Measures) != len(b.schema.Measures) {
		return fmt.Errorf("table: row has %d measures, schema has %d",
			len(r.Measures), len(b.schema.Measures))
	}
	if len(r.Texts) != len(b.schema.Texts) {
		return fmt.Errorf("table: row has %d texts, schema has %d",
			len(r.Texts), len(b.schema.Texts))
	}
	for d, c := range r.Coords {
		card := b.schema.Dimensions[d].Levels[b.schema.Dimensions[d].Finest()].Cardinality
		if c < 0 || c >= card {
			return fmt.Errorf("table: coord %d out of range [0,%d) for dimension %q",
				c, card, b.schema.Dimensions[d].Name)
		}
		b.dimCoord[d] = append(b.dimCoord[d], uint32(c))
	}
	for m, v := range r.Measures {
		b.measures[m] = append(b.measures[m], v)
	}
	for i, s := range r.Texts {
		id, err := b.textBldr[i].Add(s)
		if err != nil {
			return err
		}
		b.textProv[i] = append(b.textProv[i], id)
	}
	b.rows++
	return nil
}

// Rows returns the number of tuples appended so far.
func (b *Builder) Rows() int { return b.rows }

// Build freezes the builder: derives every coarser-level column from the
// finest coordinates, builds per-column dictionaries (order-preserving
// Sorted kind) and rewrites provisional text codes to final codes.
func (b *Builder) Build() (*FactTable, error) {
	t := &FactTable{schema: b.schema, rows: b.rows}
	t.dimLevels = make([][][]uint32, len(b.schema.Dimensions))
	for d, spec := range b.schema.Dimensions {
		finest := spec.Finest()
		finestCard := spec.Levels[finest].Cardinality
		t.dimLevels[d] = make([][]uint32, len(spec.Levels))
		for l, lv := range spec.Levels {
			if l == finest {
				t.dimLevels[d][l] = b.dimCoord[d]
				continue
			}
			// ratio rows of the finest level roll up into one coarse cell.
			ratio := uint32(finestCard / lv.Cardinality)
			col := make([]uint32, b.rows)
			for i, c := range b.dimCoord[d] {
				col[i] = c / ratio
			}
			t.dimLevels[d][l] = col
		}
	}
	t.measures = b.measures
	if len(b.schema.Texts) > 0 {
		t.dicts = dict.NewSet()
		t.texts = make([][]uint32, len(b.schema.Texts))
		for i, spec := range b.schema.Texts {
			d, remap, err := b.textBldr[i].Build(dict.KindSorted)
			if err != nil {
				return nil, err
			}
			t.dicts.Put(spec.Name, d)
			col := make([]uint32, b.rows)
			for r, prov := range b.textProv[i] {
				col[r] = uint32(remap[prov])
			}
			t.texts[i] = col
		}
	}
	return t, nil
}

// CoordAt returns the coordinate of row r in dimension d at level l.
func (t *FactTable) CoordAt(r, d, l int) uint32 { return t.dimLevels[d][l][r] }
