package table

import (
	"fmt"
	"sync"
)

// BatchSize is the number of rows a vectorized kernel processes per step.
// 1024 rows keep the selection vector (4 KiB) and the touched slice of
// each predicate column (4 KiB) resident in L1 while amortising the
// per-batch dispatch over enough rows that the monomorphic inner loops
// dominate.
const BatchSize = 1024

// maxBatchSize bounds the selection-vector capacity; rangeBatch clamps to
// it so the batch-size microbenchmarks can sweep beyond BatchSize without
// reallocating scratch.
const maxBatchSize = 4096

// scanScratch is the per-Range working set: one selection vector, reused
// across batches. Pooled so the steady-state scan loop allocates nothing
// per call — gpusim launches one Range per stripe per kernel, and the
// paper's throughput tables run millions of them.
type scanScratch struct {
	sel []int32
}

var scanScratchPool = sync.Pool{
	New: func() any { return &scanScratch{sel: make([]int32, maxBatchSize)} },
}

// --- filter kernels -------------------------------------------------------
//
// Each kernel is monomorphic over one predicate shape. A "seed" kernel
// scans a whole batch and fills the selection vector with the in-batch
// offsets of passing rows; a "refine" kernel compacts an existing
// selection vector in place. Offsets are relative to the batch base so
// the vector stays int32 regardless of table size.

// seedRange assumes from <= to (BindScan short-circuits inverted ranges
// via ScanPlan.never before any kernel runs), so the two comparisons fuse
// into one unsigned subtract-compare. The selection vector is built
// branch-free: the candidate offset is stored unconditionally and the
// write cursor advances only on a match, so a mispredicted row costs a
// dead store instead of a pipeline flush — the MonetDB/X100 idiom the
// motivation cites.
//
//olaplint:noalloc
func seedRange(col []uint32, base, n int, from, to uint32, sel []int32) int {
	k := 0
	span := to - from
	for i := 0; i < n; i++ {
		sel[k] = int32(i)
		if col[base+i]-from <= span {
			k++
		}
	}
	return k
}

//olaplint:noalloc
func refineRange(col []uint32, base int, from, to uint32, sel []int32) int {
	k := 0
	span := to - from
	for _, i := range sel {
		sel[k] = i
		if col[base+int(i)]-from <= span {
			k++
		}
	}
	return k
}

//olaplint:noalloc
func orMatches(v, from, to uint32, or []CodeRange) bool {
	if v >= from && v <= to {
		return true
	}
	for _, r := range or {
		if v >= r.From && v <= r.To {
			return true
		}
	}
	return false
}

//olaplint:noalloc
func seedOr(col []uint32, base, n int, from, to uint32, or []CodeRange, sel []int32) int {
	k := 0
	for i := 0; i < n; i++ {
		sel[k] = int32(i)
		if orMatches(col[base+i], from, to, or) {
			k++
		}
	}
	return k
}

//olaplint:noalloc
func refineOr(col []uint32, base int, from, to uint32, or []CodeRange, sel []int32) int {
	k := 0
	for _, i := range sel {
		sel[k] = i
		if orMatches(col[base+int(i)], from, to, or) {
			k++
		}
	}
	return k
}

//olaplint:noalloc
func pointMatches(v uint32, points []uint32) bool {
	for _, p := range points {
		if v == p {
			return true
		}
	}
	return false
}

//olaplint:noalloc
func seedPoints(col []uint32, base, n int, points []uint32, sel []int32) int {
	k := 0
	for i := 0; i < n; i++ {
		sel[k] = int32(i)
		if pointMatches(col[base+i], points) {
			k++
		}
	}
	return k
}

//olaplint:noalloc
func refinePoints(col []uint32, base int, points []uint32, sel []int32) int {
	k := 0
	for _, i := range sel {
		sel[k] = i
		if pointMatches(col[base+int(i)], points) {
			k++
		}
	}
	return k
}

// seed dispatches the shape once per batch (not once per row).
//
//olaplint:noalloc
func (p *boundPred) seed(base, n int, sel []int32) int {
	switch p.shape {
	case shapePoints:
		return seedPoints(p.col, base, n, p.points, sel)
	case shapeOr:
		return seedOr(p.col, base, n, p.from, p.to, p.or, sel)
	default:
		return seedRange(p.col, base, n, p.from, p.to, sel)
	}
}

// refine dispatches the shape once per batch over the surviving rows.
//
//olaplint:noalloc
func (p *boundPred) refine(base int, sel []int32) int {
	switch p.shape {
	case shapePoints:
		return refinePoints(p.col, base, p.points, sel)
	case shapeOr:
		return refineOr(p.col, base, p.from, p.to, p.or, sel)
	default:
		return refineRange(p.col, base, p.from, p.to, sel)
	}
}

// --- aggregation kernels --------------------------------------------------
//
// One loop per AggOp, over either a selection vector or a dense run (the
// no-predicate case). Accumulation order matches ScanRange exactly — row
// ascending, one float add per matching row — so results are bit-identical
// to the reference kernel, not merely close.

//olaplint:noalloc
func sumSel(acc float64, meas []float64, base int, sel []int32) float64 {
	for _, i := range sel {
		acc += meas[base+int(i)]
	}
	return acc
}

//olaplint:noalloc
func minSel(acc float64, first bool, meas []float64, base int, sel []int32) float64 {
	for _, i := range sel {
		v := meas[base+int(i)]
		if first || v < acc {
			acc = v
		}
		first = false
	}
	return acc
}

//olaplint:noalloc
func maxSel(acc float64, first bool, meas []float64, base int, sel []int32) float64 {
	for _, i := range sel {
		v := meas[base+int(i)]
		if first || v > acc {
			acc = v
		}
		first = false
	}
	return acc
}

//olaplint:noalloc
func sumRun(acc float64, run []float64) float64 {
	for _, v := range run {
		acc += v
	}
	return acc
}

//olaplint:noalloc
func minRun(acc float64, first bool, run []float64) float64 {
	for _, v := range run {
		if first || v < acc {
			acc = v
		}
		first = false
	}
	return acc
}

//olaplint:noalloc
func maxRun(acc float64, first bool, run []float64) float64 {
	for _, v := range run {
		if first || v > acc {
			acc = v
		}
		first = false
	}
	return acc
}

// Range runs the plan's vectorized kernel over rows [lo, hi) and returns
// a partial result with the same pre-Finalize semantics as ScanRange.
// Safe for concurrent use; allocates nothing in steady state.
func (pl *ScanPlan) Range(lo, hi int) (ScanResult, error) {
	return pl.rangeBatch(ScanResult{}, lo, hi, BatchSize)
}

// RangeFrom is Range seeded with a prior partial result: it continues
// accumulating into acc as if the rows of [lo, hi) immediately followed
// the rows acc already covers. Chaining consecutive stripes through one
// accumulator is therefore bit-identical to a single Range over their
// concatenation (continuous accumulation rounds like one long scan, not
// like Merge over partial sums) — the property snapshot scans rely on to
// match a from-scratch rebuild exactly.
func (pl *ScanPlan) RangeFrom(acc ScanResult, lo, hi int) (ScanResult, error) {
	return pl.rangeBatch(acc, lo, hi, BatchSize)
}

// rangeBatch is RangeFrom with an explicit batch size (the
// microbenchmarks sweep it; production callers always pass BatchSize).
func (pl *ScanPlan) rangeBatch(acc ScanResult, lo, hi, batch int) (ScanResult, error) {
	if lo < 0 || hi > pl.rows || lo > hi {
		return ScanResult{}, fmt.Errorf("table: scan range [%d,%d) outside [0,%d)", lo, hi, pl.rows)
	}
	if batch < 1 {
		batch = 1
	}
	if batch > maxBatchSize {
		batch = maxBatchSize
	}
	if pl.never {
		return acc, nil
	}
	res := acc
	if len(pl.preds) == 0 {
		// No filtration: aggregate dense runs directly, no selection
		// vector needed.
		first := res.Rows == 0
		res.Rows += int64(hi - lo)
		switch pl.op {
		case AggSum, AggAvg:
			res.Value = sumRun(res.Value, pl.meas[lo:hi])
		case AggMin:
			res.Value = minRun(res.Value, first, pl.meas[lo:hi])
		case AggMax:
			res.Value = maxRun(res.Value, first, pl.meas[lo:hi])
		}
		return res, nil
	}

	sc := scanScratchPool.Get().(*scanScratch)
	sel := sc.sel
	first := res.Rows == 0
	for base := lo; base < hi; base += batch {
		n := hi - base
		if n > batch {
			n = batch
		}
		k := pl.preds[0].seed(base, n, sel)
		for pi := 1; pi < len(pl.preds) && k > 0; pi++ {
			k = pl.preds[pi].refine(base, sel[:k])
		}
		if k == 0 {
			continue
		}
		res.Rows += int64(k)
		switch pl.op {
		case AggSum, AggAvg:
			res.Value = sumSel(res.Value, pl.meas, base, sel[:k])
		case AggMin:
			res.Value = minSel(res.Value, first, pl.meas, base, sel[:k])
		case AggMax:
			res.Value = maxSel(res.Value, first, pl.meas, base, sel[:k])
		}
		first = false
	}
	scanScratchPool.Put(sc)
	return res, nil
}

// Scan executes the whole plan sequentially and finalises the result —
// the vectorized counterpart of Scan.
func (pl *ScanPlan) Scan() (ScanResult, error) {
	res, err := pl.Range(0, pl.rows)
	if err != nil {
		return ScanResult{}, err
	}
	return Finalize(pl.op, res), nil
}
