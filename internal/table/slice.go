package table

import "fmt"

// Slice returns a shard view over rows [lo, hi) of t: a FactTable whose
// columns are sub-slices of t's backing arrays and whose dictionaries are
// SHARED with the parent. Sharing the dictionary set is what makes
// distributed execution coherent — a text predicate translated once at
// the coordinator yields integer codes that mean the same thing on every
// shard, and group labels decode identically no matter which shard
// produced the row. The view is immutable like its parent and costs only
// slice headers to build.
func Slice(t *FactTable, lo, hi int) (*FactTable, error) {
	if lo < 0 || hi > t.rows || lo > hi {
		return nil, fmt.Errorf("table: slice [%d,%d) outside rows [0,%d)", lo, hi, t.rows)
	}
	s := &FactTable{
		schema: t.schema,
		rows:   hi - lo,
		dicts:  t.dicts,
	}
	s.dimLevels = make([][][]uint32, len(t.dimLevels))
	for d := range t.dimLevels {
		s.dimLevels[d] = make([][]uint32, len(t.dimLevels[d]))
		for l := range t.dimLevels[d] {
			s.dimLevels[d][l] = t.dimLevels[d][l][lo:hi:hi]
		}
	}
	s.measures = make([][]float64, len(t.measures))
	for m := range t.measures {
		s.measures[m] = t.measures[m][lo:hi:hi]
	}
	if len(t.texts) > 0 {
		s.texts = make([][]uint32, len(t.texts))
		for i := range t.texts {
			s.texts[i] = t.texts[i][lo:hi:hi]
		}
	}
	return s, nil
}
