package table

import (
	"fmt"
	"testing"
)

// Benchmarks comparing the row-at-a-time reference kernel (ScanRange)
// against the vectorized batch kernel ((*ScanPlan).Range) — the numbers
// behind the "Vectorized execution" section of DESIGN.md and the
// BENCH_scan.json baseline. The acceptance bar for this layer is the
// rows=10M/preds=3/sel=10pct pair: vectorized must run >= 1.5x faster
// than reference with 0 allocs/op.

// benchCard is the per-column cardinality of the benchmark schema; with
// uniform codes, a predicate accepting w of benchCard codes has
// selectivity w/benchCard.
const benchCard = 100

func benchSchema() Schema {
	return Schema{
		Dimensions: []DimensionSpec{
			{Name: "d0", Levels: []LevelSpec{{Name: "l0", Cardinality: benchCard}}},
			{Name: "d1", Levels: []LevelSpec{{Name: "l1", Cardinality: benchCard}}},
			{Name: "d2", Levels: []LevelSpec{{Name: "l2", Cardinality: benchCard}}},
		},
		Measures: []MeasureSpec{{Name: "m"}},
	}
}

// benchTables caches generated tables across sub-benchmarks (a 10M-row
// table takes seconds to build; the scan under test takes milliseconds).
var benchTables = map[int]*FactTable{}

func benchTable(b *testing.B, rows int) *FactTable {
	b.Helper()
	if ft, ok := benchTables[rows]; ok {
		return ft
	}
	ft, err := Generate(GenSpec{Schema: benchSchema(), Rows: rows, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	benchTables[rows] = ft
	return ft
}

// predsForSelectivity builds n predicates, each accepting `width` of the
// benchCard codes on a distinct column.
func predsForSelectivity(n int, width uint32) []RangePredicate {
	out := make([]RangePredicate, n)
	for i := range out {
		out[i] = RangePredicate{Dim: i, Level: 0, From: 0, To: width - 1}
	}
	return out
}

func runReference(b *testing.B, ft *FactTable, req ScanRequest) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ScanRange(ft, req, 0, ft.Rows()); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(ft.Rows()) * 4) // first predicate column traffic
}

func runVectorized(b *testing.B, ft *FactTable, req ScanRequest) {
	b.Helper()
	plan, err := BindScan(ft, req)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Range(0, ft.Rows()); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(ft.Rows()) * 4)
}

// BenchmarkScanKernels is the kernel comparison matrix. The headline pair
// (acceptance criterion) is rows=10M/preds=3/sel=10pct.
func BenchmarkScanKernels(b *testing.B) {
	// Headline: 10M rows, 3 predicates, ~10% combined selectivity
	// (0.46^3 ≈ 0.097), sum aggregation.
	b.Run("rows=10M/preds=3/sel=10pct/kernel=reference", func(b *testing.B) {
		ft := benchTable(b, 10_000_000)
		runReference(b, ft, ScanRequest{Op: AggSum, Measure: 0, Predicates: predsForSelectivity(3, 46)})
	})
	b.Run("rows=10M/preds=3/sel=10pct/kernel=vectorized", func(b *testing.B) {
		ft := benchTable(b, 10_000_000)
		runVectorized(b, ft, ScanRequest{Op: AggSum, Measure: 0, Predicates: predsForSelectivity(3, 46)})
	})

	// Per-op comparison at 1M rows, one ~10% predicate.
	ops := []AggOp{AggSum, AggCount, AggMin, AggMax, AggAvg}
	for _, op := range ops {
		op := op
		req := ScanRequest{Op: op, Measure: 0, Predicates: predsForSelectivity(1, 10)}
		b.Run(fmt.Sprintf("rows=1M/op=%s/kernel=reference", op), func(b *testing.B) {
			runReference(b, benchTable(b, 1_000_000), req)
		})
		b.Run(fmt.Sprintf("rows=1M/op=%s/kernel=vectorized", op), func(b *testing.B) {
			runVectorized(b, benchTable(b, 1_000_000), req)
		})
	}

	// Per-selectivity comparison at 1M rows, 3 predicates; widths are the
	// per-predicate accepted codes of benchCard.
	for _, w := range []uint32{5, 22, 46, 79, 100} {
		w := w
		pct := float64(w) / benchCard * 100
		req := ScanRequest{Op: AggSum, Measure: 0, Predicates: predsForSelectivity(3, w)}
		b.Run(fmt.Sprintf("rows=1M/predsel=%.0fpct/kernel=reference", pct), func(b *testing.B) {
			runReference(b, benchTable(b, 1_000_000), req)
		})
		b.Run(fmt.Sprintf("rows=1M/predsel=%.0fpct/kernel=vectorized", pct), func(b *testing.B) {
			runVectorized(b, benchTable(b, 1_000_000), req)
		})
	}

	// Batch-size sweep: the speedup at each batch size (the BatchSize
	// constant is the tuned point of this curve).
	for _, batch := range []int{64, 256, 1024, 4096} {
		batch := batch
		req := ScanRequest{Op: AggSum, Measure: 0, Predicates: predsForSelectivity(3, 46)}
		b.Run(fmt.Sprintf("rows=1M/batch=%d/kernel=vectorized", batch), func(b *testing.B) {
			ft := benchTable(b, 1_000_000)
			plan, err := BindScan(ft, req)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := plan.rangeBatch(ScanResult{}, 0, ft.Rows(), batch); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(ft.Rows()) * 4)
		})
	}

	// Predicate shapes: Or-list and translated-text point-list kernels.
	orPreds := []RangePredicate{{
		Dim: 0, Level: 0, From: 10, To: 19,
		Or: []CodeRange{{From: 40, To: 49}, {From: 70, To: 74}},
	}}
	pointPreds := []RangePredicate{{
		Dim: 0, Level: 0, From: 7, To: 7,
		Or: []CodeRange{{From: 21, To: 21}, {From: 56, To: 56}, {From: 83, To: 83}},
	}}
	for _, tc := range []struct {
		name  string
		preds []RangePredicate
	}{{"or", orPreds}, {"points", pointPreds}} {
		tc := tc
		req := ScanRequest{Op: AggSum, Measure: 0, Predicates: tc.preds}
		b.Run(fmt.Sprintf("rows=1M/shape=%s/kernel=reference", tc.name), func(b *testing.B) {
			runReference(b, benchTable(b, 1_000_000), req)
		})
		b.Run(fmt.Sprintf("rows=1M/shape=%s/kernel=vectorized", tc.name), func(b *testing.B) {
			runVectorized(b, benchTable(b, 1_000_000), req)
		})
	}
}

// BenchmarkGroupScanKernels compares the grouped kernels: reference
// GroupScanRange (fresh map per stripe, merged) vs the bound plan's
// RangeInto accumulating into one map.
func BenchmarkGroupScanKernels(b *testing.B) {
	req := GroupScanRequest{
		ScanRequest: ScanRequest{Op: AggSum, Measure: 0, Predicates: predsForSelectivity(2, 46)},
		GroupBy:     []GroupCol{{Dim: 2, Level: 0}},
	}
	b.Run("rows=1M/kernel=reference", func(b *testing.B) {
		ft := benchTable(b, 1_000_000)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := GroupScanRange(ft, req, 0, ft.Rows()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rows=1M/kernel=vectorized", func(b *testing.B) {
		ft := benchTable(b, 1_000_000)
		plan, err := BindGroupScan(ft, req)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := plan.RangeInto(0, ft.Rows(), nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}
