package table

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// The streaming-ingest write path splits the fact table into immutable
// *stripes*: the offline-built base table plus small delta stripes
// materialized from ingested batches. Readers never lock — every query
// pins a Snapshot (an immutable stripe list published under a single
// atomic pointer) at bind time and sees a frozen, consistent row set
// while ingest and compaction continue publishing newer epochs.

// StripeKind distinguishes how a stripe was produced.
type StripeKind uint8

const (
	// StripeBase is an offline-built or compacted stripe.
	StripeBase StripeKind = iota
	// StripeDelta is a small stripe materialized from one ingested batch.
	StripeDelta
)

// String names the kind.
func (k StripeKind) String() string {
	switch k {
	case StripeBase:
		return "base"
	case StripeDelta:
		return "delta"
	default:
		return fmt.Sprintf("StripeKind(%d)", int(k))
	}
}

// Stripe is one immutable horizontal slice of the logical fact table.
type Stripe struct {
	id   uint64
	kind StripeKind
	t    *FactTable
}

// ID returns the registry-assigned stripe identifier (stable across
// epochs; compaction retires IDs and mints a new one for the merge).
func (s *Stripe) ID() uint64 { return s.id }

// Kind reports whether the stripe is base-format or a delta.
func (s *Stripe) Kind() StripeKind { return s.kind }

// Table returns the stripe's columnar data.
func (s *Stripe) Table() *FactTable { return s.t }

// Rows returns the stripe's row count.
func (s *Stripe) Rows() int { return s.t.Rows() }

// Snapshot is the immutable stripe set visible at one epoch. The logical
// row order of the snapshot is the concatenation of its stripes in slice
// order; publishers preserve that order (compaction splices the merged
// stripe into the position of the first stripe it replaces), so scans over
// any epoch visit rows exactly as a from-scratch rebuild would.
type Snapshot struct {
	epoch   uint64
	stripes []*Stripe
	rows    int
	aux     any
}

// Epoch returns the snapshot's epoch number (0 is the base-only epoch).
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Stripes returns the visible stripes in logical row order (do not
// modify).
func (s *Snapshot) Stripes() []*Stripe { return s.stripes }

// Rows returns the total visible row count.
func (s *Snapshot) Rows() int { return s.rows }

// DeltaStripes counts the visible stripes of kind StripeDelta — the
// compactor's trigger metric.
func (s *Snapshot) DeltaStripes() int {
	n := 0
	for _, st := range s.stripes {
		if st.kind == StripeDelta {
			n++
		}
	}
	return n
}

// Aux returns the epoch-paired auxiliary read state published with the
// snapshot. The ingest store keeps the incrementally maintained cube set
// here so CPU-partition answers are consistent with the pinned stripe set.
func (s *Snapshot) Aux() any { return s.aux }

// SizeBytes sums the columnar footprint of all visible stripes — the
// quantity that must fit the simulated GPU's global memory.
func (s *Snapshot) SizeBytes() int64 {
	var n int64
	for _, st := range s.stripes {
		n += st.t.SizeBytes()
	}
	return n
}

// Registry owns the epoch sequence of a live table. Publishing is
// serialised by an internal mutex; pinning the current snapshot is a
// single atomic load, so the read path stays wait-free under concurrent
// ingest and compaction.
type Registry struct {
	mu     sync.Mutex // serialises Publish
	nextID uint64     // next stripe ID, under mu
	schema Schema
	cur    atomic.Pointer[Snapshot]
}

// NewRegistry starts a registry at epoch 0. base may be nil for a table
// born empty; aux is the epoch-0 auxiliary state (see Snapshot.Aux).
func NewRegistry(schema Schema, base *FactTable, aux any) (*Registry, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	r := &Registry{schema: schema}
	snap := &Snapshot{aux: aux}
	if base != nil {
		if err := sameSchema(&schema, base.Schema()); err != nil {
			return nil, fmt.Errorf("table: base stripe: %w", err)
		}
		snap.stripes = []*Stripe{{id: 0, kind: StripeBase, t: base}}
		snap.rows = base.Rows()
		r.nextID = 1
	}
	r.cur.Store(snap)
	return r, nil
}

// Schema returns the registry's schema (shared by every stripe).
func (r *Registry) Schema() *Schema { return &r.schema }

// Current pins the latest published snapshot. The returned snapshot is
// immutable and remains valid (and consistent) for as long as the caller
// holds it, regardless of later publishes.
func (r *Registry) Current() *Snapshot { return r.cur.Load() }

// Publish atomically installs a new epoch: removeIDs retire existing
// stripes and adds append new ones, in order, each wrapped as a stripe of
// the given kind. When stripes are removed, the added stripes splice into
// the position of the first removed stripe, preserving logical row order
// (the compaction contract: a merged stripe replaces a contiguous run of
// deltas in place). With no removals, adds go to the end (the ingest
// contract: new rows append). Returns the published snapshot.
func (r *Registry) Publish(adds []*FactTable, kind StripeKind, removeIDs []uint64, aux any) (*Snapshot, error) {
	r.mu.Lock()
	defer r.mu.Unlock()

	old := r.cur.Load()
	remove := make(map[uint64]bool, len(removeIDs))
	for _, id := range removeIDs {
		remove[id] = true
	}

	wrapped := make([]*Stripe, len(adds))
	for i, ft := range adds {
		if ft == nil {
			return nil, fmt.Errorf("table: publish: nil stripe table")
		}
		if err := sameSchema(&r.schema, ft.Schema()); err != nil {
			return nil, fmt.Errorf("table: publish: %w", err)
		}
		wrapped[i] = &Stripe{id: r.nextID, kind: kind, t: ft}
		r.nextID++
	}

	next := &Snapshot{epoch: old.epoch + 1, aux: aux}
	next.stripes = make([]*Stripe, 0, len(old.stripes)+len(wrapped))
	spliced := false
	for _, st := range old.stripes {
		if remove[st.id] {
			if !spliced {
				next.stripes = append(next.stripes, wrapped...)
				spliced = true
			}
			delete(remove, st.id)
			continue
		}
		next.stripes = append(next.stripes, st)
	}
	if len(remove) > 0 {
		return nil, fmt.Errorf("table: publish: %d removed stripe IDs not present", len(remove))
	}
	if !spliced {
		next.stripes = append(next.stripes, wrapped...)
	}
	for _, st := range next.stripes {
		next.rows += st.t.Rows()
	}
	r.cur.Store(next)
	return next, nil
}

// sameSchema checks structural equality of two schemas: same dimensions,
// levels, cardinalities, measures and text columns in the same order.
// Every stripe of a registry must agree so predicates bind identically.
func sameSchema(a, b *Schema) error {
	if len(a.Dimensions) != len(b.Dimensions) {
		return fmt.Errorf("schema mismatch: %d vs %d dimensions", len(a.Dimensions), len(b.Dimensions))
	}
	for d := range a.Dimensions {
		da, db := a.Dimensions[d], b.Dimensions[d]
		if da.Name != db.Name || len(da.Levels) != len(db.Levels) {
			return fmt.Errorf("schema mismatch in dimension %q", da.Name)
		}
		for l := range da.Levels {
			if da.Levels[l] != db.Levels[l] {
				return fmt.Errorf("schema mismatch in dimension %q level %q", da.Name, da.Levels[l].Name)
			}
		}
	}
	if len(a.Measures) != len(b.Measures) {
		return fmt.Errorf("schema mismatch: %d vs %d measures", len(a.Measures), len(b.Measures))
	}
	for m := range a.Measures {
		if a.Measures[m] != b.Measures[m] {
			return fmt.Errorf("schema mismatch in measure %q", a.Measures[m].Name)
		}
	}
	if len(a.Texts) != len(b.Texts) {
		return fmt.Errorf("schema mismatch: %d vs %d text columns", len(a.Texts), len(b.Texts))
	}
	for t := range a.Texts {
		if a.Texts[t] != b.Texts[t] {
			return fmt.Errorf("schema mismatch in text column %q", a.Texts[t].Name)
		}
	}
	return nil
}
