package table

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPackUnpackKey(t *testing.T) {
	coords := []uint32{7, 0, 65535, 12}
	k := PackKey(coords)
	back := UnpackKey(k, len(coords))
	for i := range coords {
		if back[i] != coords[i] {
			t.Fatalf("round trip %v -> %v", coords, back)
		}
	}
}

func TestPackKeyProperty(t *testing.T) {
	f := func(a, b, c, d uint16) bool {
		coords := []uint32{uint32(a), uint32(b), uint32(c), uint32(d)}
		back := UnpackKey(PackKey(coords), 4)
		for i := range coords {
			if back[i] != coords[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGroupScanMatchesBruteForce(t *testing.T) {
	ft, err := Generate(GenSpec{Schema: smallSchema(), Rows: 2000, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	req := GroupScanRequest{
		ScanRequest: ScanRequest{
			Predicates: []RangePredicate{{Dim: 0, Level: 1, From: 0, To: 17}},
			Measure:    0, Op: AggSum,
		},
		GroupBy: []GroupCol{{Dim: 0, Level: 0}, {Dim: 1, Level: 0}},
	}
	rows, err := GroupScan(ft, req)
	if err != nil {
		t.Fatal(err)
	}
	// Brute force.
	type key struct{ y, r uint32 }
	want := map[key]ScanResult{}
	for i := 0; i < ft.Rows(); i++ {
		if ft.CoordAt(i, 0, 1) > 17 {
			continue
		}
		k := key{ft.CoordAt(i, 0, 0), ft.CoordAt(i, 1, 0)}
		acc := want[k]
		acc.Rows++
		acc.Value += ft.MeasureColumn(0)[i]
		want[k] = acc
	}
	if len(rows) != len(want) {
		t.Fatalf("groups = %d, want %d", len(rows), len(want))
	}
	for _, r := range rows {
		w, ok := want[key{r.Keys[0], r.Keys[1]}]
		if !ok {
			t.Fatalf("unexpected group %v", r.Keys)
		}
		if r.Rows != w.Rows || math.Abs(r.Value-w.Value) > 1e-9 {
			t.Fatalf("group %v: got (%v,%d) want (%v,%d)", r.Keys, r.Value, r.Rows, w.Value, w.Rows)
		}
	}
	// Sorted by key.
	for i := 1; i < len(rows); i++ {
		if PackKey(rows[i-1].Keys) >= PackKey(rows[i].Keys) {
			t.Fatal("groups not sorted")
		}
	}
}

func TestGroupScanAllOps(t *testing.T) {
	ft, _ := Generate(GenSpec{Schema: smallSchema(), Rows: 500, Seed: 42})
	for _, op := range []AggOp{AggSum, AggCount, AggMin, AggMax, AggAvg} {
		req := GroupScanRequest{
			ScanRequest: ScanRequest{Measure: 0, Op: op},
			GroupBy:     []GroupCol{{Dim: 1, Level: 0}},
		}
		rows, err := GroupScan(ft, req)
		if err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		// The per-group results must reconcile with a scalar scan filtered
		// to that group.
		for _, r := range rows {
			scalar, err := Scan(ft, ScanRequest{
				Predicates: []RangePredicate{{Dim: 1, Level: 0, From: r.Keys[0], To: r.Keys[0]}},
				Measure:    0, Op: op,
			})
			if err != nil {
				t.Fatal(err)
			}
			if scalar.Rows != r.Rows || math.Abs(scalar.Value-r.Value) > 1e-9 {
				t.Fatalf("%v group %v: grouped (%v,%d) vs scalar (%v,%d)",
					op, r.Keys, r.Value, r.Rows, scalar.Value, scalar.Rows)
			}
		}
	}
}

func TestGroupScanByTextColumn(t *testing.T) {
	ft, err := Generate(GenSpec{Schema: smallSchema(), Rows: 400, Seed: 43,
		TextPools: [][]string{{"ash", "birch", "cedar"}}})
	if err != nil {
		t.Fatal(err)
	}
	req := GroupScanRequest{
		ScanRequest: ScanRequest{Measure: 0, Op: AggCount},
		GroupBy:     []GroupCol{{Text: true, TextIndex: 0}},
	}
	rows, err := GroupScan(ft, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("groups = %d, want 3", len(rows))
	}
	var total int64
	for _, r := range rows {
		total += r.Rows
	}
	if total != 400 {
		t.Fatalf("rows sum to %d", total)
	}
}

func TestGroupScanStripeMergeEquivalence(t *testing.T) {
	ft, _ := Generate(GenSpec{Schema: smallSchema(), Rows: 1500, Seed: 44})
	req := GroupScanRequest{
		ScanRequest: ScanRequest{Measure: 0, Op: AggAvg},
		GroupBy:     []GroupCol{{Dim: 0, Level: 0}},
	}
	whole, err := GroupScan(ft, req)
	if err != nil {
		t.Fatal(err)
	}
	var acc Groups
	for lo := 0; lo < ft.Rows(); lo += 217 {
		hi := lo + 217
		if hi > ft.Rows() {
			hi = ft.Rows()
		}
		part, err := GroupScanRange(ft, req, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		acc = MergeGroups(req.Op, acc, part)
	}
	merged := FinalizeGroups(req.Op, acc, 1)
	if len(merged) != len(whole) {
		t.Fatalf("groups %d vs %d", len(merged), len(whole))
	}
	for i := range whole {
		if merged[i].Rows != whole[i].Rows || math.Abs(merged[i].Value-whole[i].Value) > 1e-9 {
			t.Fatalf("group %d differs: %+v vs %+v", i, merged[i], whole[i])
		}
	}
}

func TestGroupScanValidation(t *testing.T) {
	ft, _ := Generate(GenSpec{Schema: smallSchema(), Rows: 10, Seed: 45})
	bad := []GroupScanRequest{
		{ScanRequest: ScanRequest{Op: AggCount}},                                          // no group cols
		{ScanRequest: ScanRequest{Op: AggCount}, GroupBy: make([]GroupCol, 5)},            // too many
		{ScanRequest: ScanRequest{Op: AggCount}, GroupBy: []GroupCol{{Dim: 9}}},           // bad dim
		{ScanRequest: ScanRequest{Op: AggCount}, GroupBy: []GroupCol{{Dim: 0, Level: 9}}}, // bad level
		{ScanRequest: ScanRequest{Op: AggCount}, GroupBy: []GroupCol{{Text: true, TextIndex: 9}}},
		{ScanRequest: ScanRequest{Op: AggSum, Measure: 9}, GroupBy: []GroupCol{{Dim: 0}}},
	}
	for i, req := range bad {
		if _, err := GroupScan(ft, req); err == nil {
			t.Errorf("bad request %d accepted", i)
		}
	}
}

func TestGroupColumnsAccessed(t *testing.T) {
	req := GroupScanRequest{
		ScanRequest: ScanRequest{
			Predicates: []RangePredicate{{Dim: 0, Level: 0}},
			Op:         AggSum,
		},
		GroupBy: []GroupCol{{Dim: 1, Level: 0}, {Dim: 0, Level: 1}},
	}
	// 1 predicate + 1 measure + 2 group columns.
	if got := req.ColumnsAccessed(); got != 4 {
		t.Fatalf("ColumnsAccessed = %d, want 4", got)
	}
}
