package table

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Fused scans: K compatible scan requests (same table, same predicate
// column set) evaluated in ONE pass over the columns. Scans are memory-
// bandwidth-bound with low IPC, so evaluating every member's predicate set
// per batch costs almost nothing on top of the single bandwidth bill the
// queries would otherwise each pay.
//
// Per 1024-row batch the kernel seeds one shared selection vector with the
// envelope predicate — the [min(From), max(To)] hull of every member's
// accepted interval on the most selective shared column — then, for each
// member, copies the shared vector and refines it with the member's own
// residual predicates before scattering into that member's accumulator.
//
// Bit-identity: the refinement passes compact the selection vector in
// place preserving ascending row order, and a member's residual list
// includes every predicate the envelope did not exactly apply, so the
// final per-member selection is exactly the row set the member's own
// unfused plan selects, in the same order. Scalar accumulation over the
// same rows in the same order is bit-identical to the unfused kernel —
// not merely close.

// fusedColRef canonically identifies one predicate column: a (dim, level)
// pair or a text column index.
type fusedColRef struct {
	text bool
	a, b int // (dim, level), or (textIndex, 0)
}

func colRefOf(p *RangePredicate) fusedColRef {
	if p.Text {
		return fusedColRef{text: true, a: p.TextIndex}
	}
	return fusedColRef{a: p.Dim, b: p.Level}
}

func colRefLess(x, y fusedColRef) bool {
	if x.text != y.text {
		return !x.text // dimension columns order before text columns
	}
	if x.a != y.a {
		return x.a < y.a
	}
	return x.b < y.b
}

func (c fusedColRef) String() string {
	if c.text {
		return fmt.Sprintf("t%d", c.a)
	}
	return fmt.Sprintf("d%d.%d", c.a, c.b)
}

// CanonicalPredOrder returns the indices of preds sorted by canonical
// column identity (dimension columns by (dim, level), then text columns by
// index; stable for duplicates). The fused cell accumulators and the
// engine's result cache both key cell coordinates in this order, so they
// agree without sharing state.
func CanonicalPredOrder(preds []RangePredicate) []int {
	idx := make([]int, len(preds))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(x, y int) bool {
		return colRefLess(colRefOf(&preds[idx[x]]), colRefOf(&preds[idx[y]]))
	})
	return idx
}

// FusionKey returns the canonical predicate-column-set signature of a
// request: two requests are fusion-compatible exactly when their keys are
// equal (same multiset of filtered columns). Ops, measures and intervals
// may differ per member.
func FusionKey(req ScanRequest) string {
	refs := make([]fusedColRef, len(req.Predicates))
	for i := range req.Predicates {
		refs[i] = colRefOf(&req.Predicates[i])
	}
	sort.Slice(refs, func(x, y int) bool { return colRefLess(refs[x], refs[y]) })
	var b strings.Builder
	for i, r := range refs {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(r.String())
	}
	return b.String()
}

// fusedMember is one member query of a fused pass: its residual predicates
// (selectivity-ordered), its aggregation, and optionally the grouping
// columns it scatters per-cell accumulators into (group-by columns for a
// fused grouped plan, predicate columns for a cell-cacheable scalar
// member).
type fusedMember struct {
	op    AggOp
	meas  []float64 // nil for pure counts
	preds []boundPred
	never bool
	cells bool       // scatter per-cell instead of scalar
	gcols [][]uint32 // cell/group coordinate columns, canonical order
}

// fusedCore is the shared pass state of scalar and grouped fused plans.
type fusedCore struct {
	rows      int
	shared    boundPred // envelope predicate (shapeRange), valid when sharedSet
	sharedSet bool      // false: seed densely (no usable shared column)
	never     bool      // every member matches nothing
	members   []fusedMember
}

// Members returns the number of member queries bound into the plan.
func (c *fusedCore) Members() int { return len(c.members) }

// MemberOp returns member i's aggregation op.
func (c *fusedCore) MemberOp(i int) AggOp { return c.members[i].op }

// acceptedBounds returns the hull [lo, hi] of every code the bound
// predicate accepts, or ok=false when it accepts nothing.
func acceptedBounds(bp *boundPred) (lo, hi uint32, ok bool) {
	if bp.shape == shapePoints {
		for _, p := range bp.points {
			if !ok || p < lo {
				lo = p
			}
			if !ok || p > hi {
				hi = p
			}
			ok = true
		}
		return lo, hi, ok
	}
	if bp.from <= bp.to {
		lo, hi, ok = bp.from, bp.to, true
	}
	for _, r := range bp.or {
		if r.From > r.To {
			continue
		}
		if !ok || r.From < lo {
			lo = r.From
		}
		if !ok || r.To > hi {
			hi = r.To
		}
		ok = true
	}
	return lo, hi, ok
}

// acceptedWidth counts the codes a bound predicate accepts (Or overlaps
// double-counted — an ordering heuristic, like estimateSelectivity).
func acceptedWidth(bp *boundPred) int64 {
	if bp.shape == shapePoints {
		return int64(len(bp.points))
	}
	var w int64
	if bp.from <= bp.to {
		w += int64(bp.to-bp.from) + 1
	}
	for _, r := range bp.or {
		if r.From <= r.To {
			w += int64(r.To-r.From) + 1
		}
	}
	return w
}

// memberBind is the per-member scratch of fused binding.
type memberBind struct {
	refs  []fusedColRef
	preds []boundPred
}

// bindFusedCore validates every member against the table, checks
// column-set compatibility, picks the shared envelope predicate and
// assembles per-member residual lists.
func bindFusedCore(t *FactTable, reqs []ScanRequest) (*fusedCore, []memberBind, error) {
	if len(reqs) == 0 {
		return nil, nil, fmt.Errorf("table: fused scan needs at least one member")
	}
	core := &fusedCore{rows: t.rows, members: make([]fusedMember, len(reqs))}
	binds := make([]memberBind, len(reqs))
	key0 := ""
	for mi := range reqs {
		req := &reqs[mi]
		m := &core.members[mi]
		m.op = req.Op
		if req.Op != AggCount {
			if req.Measure < 0 || req.Measure >= len(t.measures) {
				return nil, nil, fmt.Errorf("table: member %d: measure %d out of range", mi, req.Measure)
			}
			m.meas = t.measures[req.Measure]
		}
		for pi := range req.Predicates {
			p := &req.Predicates[pi]
			if err := validatePred(t, p); err != nil {
				return nil, nil, fmt.Errorf("table: member %d: %w", mi, err)
			}
			bp := bindPred(t, p)
			if bp.from > bp.to && len(bp.or) == 0 {
				m.never = true
			}
			binds[mi].refs = append(binds[mi].refs, colRefOf(p))
			binds[mi].preds = append(binds[mi].preds, bp)
		}
		k := FusionKey(*req)
		if mi == 0 {
			key0 = k
		} else if k != key0 {
			return nil, nil, fmt.Errorf("table: member %d filters columns %q, member 0 filters %q; fused members must share one column set",
				mi, k, key0)
		}
	}

	// Unique sorted column set (from member 0; all members share it).
	colSet := append([]fusedColRef(nil), binds[0].refs...)
	sort.Slice(colSet, func(x, y int) bool { return colRefLess(colSet[x], colSet[y]) })
	uniq := colSet[:0]
	for i, r := range colSet {
		if i == 0 || r != uniq[len(uniq)-1] {
			uniq = append(uniq, r)
		}
	}
	colSet = uniq

	// Pick the shared column: the one whose envelope (the hull of every
	// non-never member's accepted interval) is estimated most selective.
	// A column is unusable when some non-never member has no accepted
	// codes on it to bound (degenerate Or lists); with no usable column
	// the pass seeds densely and every predicate stays residual.
	anyLive := false
	for mi := range core.members {
		if !core.members[mi].never {
			anyLive = true
		}
	}
	if !anyLive {
		core.never = true
		return core, binds, nil
	}
	bestSel := 0.0
	var bestRef fusedColRef
	for _, ref := range colSet {
		var envFrom, envTo uint32
		var perCode float64
		envOK := true
		first := true
		for mi := range core.members {
			if core.members[mi].never {
				continue
			}
			b := &binds[mi]
			found := false
			for pi, r := range b.refs {
				if r != ref {
					continue
				}
				lo, hi, ok := acceptedBounds(&b.preds[pi])
				if !ok {
					envOK = false
					break
				}
				if first || lo < envFrom {
					envFrom = lo
				}
				if first || hi > envTo {
					envTo = hi
				}
				if w := acceptedWidth(&b.preds[pi]); w > 0 && perCode == 0 {
					perCode = b.preds[pi].sel / float64(w)
				}
				first = false
				found = true
				break // one predicate per member bounds the envelope
			}
			if !envOK || !found {
				envOK = false
				break
			}
		}
		if !envOK || first {
			continue
		}
		envSel := float64(int64(envTo-envFrom)+1) * perCode
		if !core.sharedSet || envSel < bestSel {
			core.sharedSet = true
			bestSel = envSel
			bestRef = ref
			core.shared = boundPred{from: envFrom, to: envTo, shape: shapeRange, sel: envSel}
		}
	}
	if core.sharedSet {
		// Resolve the column slice from any live member's bound predicate.
		for mi := range core.members {
			if core.members[mi].never {
				continue
			}
			for pi, r := range binds[mi].refs {
				if r == bestRef {
					core.shared.col = binds[mi].preds[pi].col
					break
				}
			}
			break
		}
	}

	// Residuals: every member predicate except one that the envelope
	// already applies exactly (a plain range equal to the envelope on the
	// shared column). Selectivity-ordered, like BindScan.
	for mi := range core.members {
		m := &core.members[mi]
		b := &binds[mi]
		dropped := false
		for pi := range b.preds {
			bp := &b.preds[pi]
			if core.sharedSet && !dropped && b.refs[pi] == bestRef &&
				bp.shape == shapeRange && bp.from == core.shared.from && bp.to == core.shared.to {
				dropped = true
				continue
			}
			m.preds = append(m.preds, *bp)
		}
		sort.SliceStable(m.preds, func(i, j int) bool { return m.preds[i].sel < m.preds[j].sel })
	}
	return core, binds, nil
}

// FusedScanPlan is K compatible ScanRequests bound to one table as a
// single shared pass. Immutable after binding; safe for concurrent
// RangeInto calls on disjoint state slices.
type FusedScanPlan struct {
	fusedCore
}

// HasCells reports whether member i accumulates per-cell aggregates
// (granted only when the member is cell-cacheable; see BindFusedScan).
func (pl *FusedScanPlan) HasCells(i int) bool { return pl.members[i].cells }

// BindFusedScan binds K compatible requests (identical predicate column
// multisets; ops, measures and intervals free per member) into one fused
// plan. wantCells, when non-nil, asks that member i additionally
// accumulate per-cell aggregates keyed by its predicate columns' codes —
// the raw material for interval-subsumption result caching. The request is
// granted only when it is sound to serve sub-ranges from the cells: the
// op's fold must be order-insensitive (count) or selection-exact
// (min/max) — never sum/avg, whose float accumulation is rounding-order-
// sensitive — and every predicate must be a plain range on a distinct
// low-cardinality dimension column. Ineligible members silently stay
// scalar; check HasCells.
func BindFusedScan(t *FactTable, reqs []ScanRequest, wantCells []bool) (*FusedScanPlan, error) {
	if wantCells != nil && len(wantCells) != len(reqs) {
		return nil, fmt.Errorf("table: got %d cell flags for %d members", len(wantCells), len(reqs))
	}
	core, _, err := bindFusedCore(t, reqs)
	if err != nil {
		return nil, err
	}
	pl := &FusedScanPlan{fusedCore: *core}
	for mi := range reqs {
		if wantCells == nil || !wantCells[mi] {
			continue
		}
		pl.grantCells(t, mi, &reqs[mi])
	}
	return pl, nil
}

// grantCells enables per-cell accumulation for member mi when eligible.
func (pl *FusedScanPlan) grantCells(t *FactTable, mi int, req *ScanRequest) {
	m := &pl.members[mi]
	switch m.op {
	case AggCount, AggMin, AggMax:
	default:
		return // sum/avg folds are rounding-order-sensitive
	}
	n := len(req.Predicates)
	if n == 0 || n > MaxGroupCols {
		return
	}
	order := CanonicalPredOrder(req.Predicates)
	gcols := make([][]uint32, 0, n)
	var prev fusedColRef
	for i, pi := range order {
		p := &req.Predicates[pi]
		if p.Text || len(p.Or) > 0 {
			return
		}
		ref := colRefOf(p)
		if i > 0 && ref == prev {
			return // duplicate column: cell coordinates would be ambiguous
		}
		prev = ref
		if t.schema.LevelCardinality(p.Dim, p.Level) > 0x10000 {
			return
		}
		gcols = append(gcols, t.dimLevels[p.Dim][p.Level])
	}
	m.cells = true
	m.gcols = gcols
}

// FusedState is one member's accumulation state of a fused pass: a scalar
// partial (pre-Finalize semantics, like ScanPlan.Range) or, for cell
// members, per-cell partials keyed by the packed cell coordinates.
type FusedState struct {
	Scalar ScanResult
	Cells  Groups // nil for scalar members
}

// fusedScratch holds the two selection vectors of a fused pass: the
// shared envelope selection and the per-member refinement copy.
type fusedScratch struct {
	shared []int32
	member []int32
}

var fusedScratchPool = sync.Pool{
	New: func() any {
		return &fusedScratch{
			shared: make([]int32, maxBatchSize),
			member: make([]int32, maxBatchSize),
		}
	},
}

// fillDense seeds a dense selection of the first n in-batch offsets.
//
//olaplint:noalloc
func fillDense(sel []int32, n int) int {
	for i := 0; i < n; i++ {
		sel[i] = int32(i)
	}
	return n
}

// refineShared copies the shared selection and refines it with the
// member's residual predicates, preserving ascending row order.
//
//olaplint:noalloc
func (m *fusedMember) refineShared(base, k int, shared, msel []int32) int {
	copy(msel[:k], shared[:k])
	kk := k
	for pi := 0; pi < len(m.preds) && kk > 0; pi++ {
		kk = m.preds[pi].refine(base, msel[:kk])
	}
	return kk
}

// accumulate folds the surviving rows into the member's scalar partial —
// the same kernels, visit order and first-row semantics as the unfused
// rangeBatch, so the partial is bit-identical to it.
//
//olaplint:noalloc
func (m *fusedMember) accumulate(st *ScanResult, base int, sel []int32) {
	first := st.Rows == 0
	st.Rows += int64(len(sel))
	switch m.op {
	case AggSum, AggAvg:
		st.Value = sumSel(st.Value, m.meas, base, sel)
	case AggMin:
		st.Value = minSel(st.Value, first, m.meas, base, sel)
	case AggMax:
		st.Value = maxSel(st.Value, first, m.meas, base, sel)
	}
}

// cellKey packs the member's cell coordinates of row r.
//
//olaplint:noalloc
func (m *fusedMember) cellKey(r int) GroupKey {
	var k GroupKey
	for _, gc := range m.gcols {
		k = k<<16 | GroupKey(gc[r]&0xFFFF)
	}
	return k
}

// accumulateGroups folds the surviving rows into per-cell accumulators
// keyed by the member's coordinate columns — one loop per op per batch,
// like GroupScanPlan.RangeInto.
func (m *fusedMember) accumulateGroups(dst Groups, base int, sel []int32) {
	switch m.op {
	case AggSum, AggAvg:
		for _, i := range sel {
			r := base + int(i)
			key := m.cellKey(r)
			acc := dst[key]
			acc.Rows++
			acc.Value += m.meas[r]
			dst[key] = acc
		}
	case AggCount:
		for _, i := range sel {
			key := m.cellKey(base + int(i))
			acc := dst[key]
			acc.Rows++
			dst[key] = acc
		}
	case AggMin:
		for _, i := range sel {
			r := base + int(i)
			key := m.cellKey(r)
			acc := dst[key]
			if acc.Rows == 0 || m.meas[r] < acc.Value {
				acc.Value = m.meas[r]
			}
			acc.Rows++
			dst[key] = acc
		}
	case AggMax:
		for _, i := range sel {
			r := base + int(i)
			key := m.cellKey(r)
			acc := dst[key]
			if acc.Rows == 0 || m.meas[r] > acc.Value {
				acc.Value = m.meas[r]
			}
			acc.Rows++
			dst[key] = acc
		}
	}
}

// RangeInto runs the fused kernel over rows [lo, hi), accumulating into
// states (one per member, caller-owned). Chaining consecutive ranges
// through the same states accumulates continuously, like RangeFrom: each
// member's scalar partial stays bit-identical to its own unfused plan
// scanning the same ranges.
func (pl *FusedScanPlan) RangeInto(lo, hi int, states []FusedState) error {
	if lo < 0 || hi > pl.rows || lo > hi {
		return fmt.Errorf("table: scan range [%d,%d) outside [0,%d)", lo, hi, pl.rows)
	}
	if len(states) != len(pl.members) {
		return fmt.Errorf("table: got %d states for %d members", len(states), len(pl.members))
	}
	if pl.never {
		return nil
	}
	sc := fusedScratchPool.Get().(*fusedScratch)
	shared, msel := sc.shared, sc.member
	for base := lo; base < hi; base += BatchSize {
		n := hi - base
		if n > BatchSize {
			n = BatchSize
		}
		var k int
		if pl.sharedSet {
			k = seedRange(pl.shared.col, base, n, pl.shared.from, pl.shared.to, shared)
		} else {
			k = fillDense(shared, n)
		}
		if k == 0 {
			continue
		}
		for mi := range pl.members {
			m := &pl.members[mi]
			if m.never {
				continue
			}
			kk := m.refineShared(base, k, shared, msel)
			if kk == 0 {
				continue
			}
			st := &states[mi]
			if m.cells {
				if st.Cells == nil {
					st.Cells = make(Groups)
				}
				m.accumulateGroups(st.Cells, base, msel[:kk])
			} else {
				m.accumulate(&st.Scalar, base, msel[:kk])
			}
		}
	}
	fusedScratchPool.Put(sc)
	return nil
}

// FoldCells folds every per-cell partial into one scalar partial, in
// sorted key order (deterministic). For count the fold is exact integer
// addition and for min/max an exact selection, so the folded partial is
// bit-identical to the member's scalar accumulation over the same rows;
// sum/avg members never carry cells (see BindFusedScan).
func FoldCells(op AggOp, cells Groups) ScanResult {
	keys := make([]GroupKey, 0, len(cells))
	for k := range cells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var acc ScanResult
	for _, k := range keys {
		acc = Merge(op, acc, cells[k])
	}
	return acc
}

// FusedGroupScanPlan is K compatible GroupScanRequests bound as one shared
// pass: members share the predicate column set but group by their own
// columns into their own destination maps.
type FusedGroupScanPlan struct {
	fusedCore
	ncols []int // group columns per member
}

// GroupCols returns the number of grouping columns of member i.
func (pl *FusedGroupScanPlan) GroupCols(i int) int { return pl.ncols[i] }

// BindFusedGroupScan binds K compatible grouped requests into one fused
// plan. Predicate column sets must match (the fusion compatibility rule);
// group-by columns are free per member.
func BindFusedGroupScan(t *FactTable, reqs []GroupScanRequest) (*FusedGroupScanPlan, error) {
	scans := make([]ScanRequest, len(reqs))
	for i := range reqs {
		if len(reqs[i].GroupBy) == 0 {
			return nil, fmt.Errorf("table: member %d: grouped scan needs at least one group column", i)
		}
		if len(reqs[i].GroupBy) > MaxGroupCols {
			return nil, fmt.Errorf("table: member %d: at most %d group columns (got %d)", i, MaxGroupCols, len(reqs[i].GroupBy))
		}
		scans[i] = reqs[i].ScanRequest
	}
	core, _, err := bindFusedCore(t, scans)
	if err != nil {
		return nil, err
	}
	pl := &FusedGroupScanPlan{fusedCore: *core, ncols: make([]int, len(reqs))}
	for mi := range reqs {
		m := &pl.members[mi]
		m.cells = true
		m.gcols = make([][]uint32, len(reqs[mi].GroupBy))
		pl.ncols[mi] = len(reqs[mi].GroupBy)
		for gi, g := range reqs[mi].GroupBy {
			col, err := validateGroupCol(t, g)
			if err != nil {
				return nil, fmt.Errorf("table: member %d: %w", mi, err)
			}
			m.gcols[gi] = col
		}
	}
	return pl, nil
}

// RangeInto runs the fused grouped kernel over rows [lo, hi), accumulating
// into one destination map per member (allocated when nil) and returning
// them. One shared pass visits rows in ascending order, so each member's
// map is bit-identical to its own unfused GroupScanPlan.RangeInto over the
// same range.
func (pl *FusedGroupScanPlan) RangeInto(lo, hi int, dsts []Groups) ([]Groups, error) {
	if lo < 0 || hi > pl.rows || lo > hi {
		return dsts, fmt.Errorf("table: scan range [%d,%d) outside [0,%d)", lo, hi, pl.rows)
	}
	if dsts == nil {
		dsts = make([]Groups, len(pl.members))
	}
	if len(dsts) != len(pl.members) {
		return dsts, fmt.Errorf("table: got %d destinations for %d members", len(dsts), len(pl.members))
	}
	for i := range dsts {
		if dsts[i] == nil {
			dsts[i] = make(Groups)
		}
	}
	if pl.never {
		return dsts, nil
	}
	sc := fusedScratchPool.Get().(*fusedScratch)
	shared, msel := sc.shared, sc.member
	for base := lo; base < hi; base += BatchSize {
		n := hi - base
		if n > BatchSize {
			n = BatchSize
		}
		var k int
		if pl.sharedSet {
			k = seedRange(pl.shared.col, base, n, pl.shared.from, pl.shared.to, shared)
		} else {
			k = fillDense(shared, n)
		}
		if k == 0 {
			continue
		}
		for mi := range pl.members {
			m := &pl.members[mi]
			if m.never {
				continue
			}
			kk := m.refineShared(base, k, shared, msel)
			if kk == 0 {
				continue
			}
			m.accumulateGroups(dsts[mi], base, msel[:kk])
		}
	}
	fusedScratchPool.Put(sc)
	return dsts, nil
}
