package table

import (
	"math"
	"testing"
)

func TestSlice(t *testing.T) {
	ft, err := Generate(GenSpec{Schema: PaperSchema(), Rows: 1000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Slice(ft, 250, 750)
	if err != nil {
		t.Fatal(err)
	}
	if s.Rows() != 500 {
		t.Fatalf("Rows = %d", s.Rows())
	}
	if s.Dicts() != ft.Dicts() {
		t.Fatal("slice does not share the parent's dictionary set")
	}
	for r := 0; r < s.Rows(); r += 100 {
		if s.CoordAt(r, 0, 2) != ft.CoordAt(250+r, 0, 2) {
			t.Fatalf("row %d: coord mismatch", r)
		}
		if math.Float64bits(s.MeasureColumn(0)[r]) != math.Float64bits(ft.MeasureColumn(0)[250+r]) {
			t.Fatalf("row %d: measure mismatch", r)
		}
		if s.TextColumn(0)[r] != ft.TextColumn(0)[250+r] {
			t.Fatalf("row %d: text code mismatch", r)
		}
	}

	// Scanning the slices end to end reproduces the full-table scan for
	// fold-order-insensitive ops.
	req := ScanRequest{Op: AggCount}
	whole, err := Scan(ft, req)
	if err != nil {
		t.Fatal(err)
	}
	var acc ScanResult
	for _, cut := range [][2]int{{0, 250}, {250, 750}, {750, 1000}} {
		sv, err := Slice(ft, cut[0], cut[1])
		if err != nil {
			t.Fatal(err)
		}
		part, err := Scan(sv, req)
		if err != nil {
			t.Fatal(err)
		}
		acc = Merge(req.Op, acc, ScanResult{Rows: part.Rows})
	}
	if acc.Rows != whole.Rows {
		t.Fatalf("sliced count %d, whole %d", acc.Rows, whole.Rows)
	}

	for _, bad := range [][2]int{{-1, 5}, {5, 2000}, {700, 600}} {
		if _, err := Slice(ft, bad[0], bad[1]); err == nil {
			t.Errorf("slice [%d,%d) accepted", bad[0], bad[1])
		}
	}
	if empty, err := Slice(ft, 300, 300); err != nil || empty.Rows() != 0 {
		t.Fatalf("empty slice: rows=%v err=%v", empty, err)
	}
}
