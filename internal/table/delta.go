package table

import (
	"fmt"

	"hybridolap/internal/dict"
)

// WithDicts returns a shallow copy of t sharing every column but using a
// different dictionary set. The live-table path re-points the offline-
// built base stripe at the append-capable dictionary set so all stripes
// of a registry translate text against the same (growing) dictionaries.
func (t *FactTable) WithDicts(ds *dict.Set) *FactTable {
	out := *t
	out.dicts = ds
	return &out
}

// FromColumns materializes an immutable FactTable directly from columnar
// data: finest-level coordinates per dimension, measure columns, and
// pre-encoded text code columns referencing a shared (append-capable)
// dictionary set. Coarser levels are derived by the same exact roll-up as
// Builder.Build. This is the delta-stripe constructor — the ingest path
// encodes text against the table's live dictionaries before materializing,
// so every stripe of a registry shares one dictionary set and codes stay
// comparable across stripes.
func FromColumns(schema Schema, coords [][]uint32, measures [][]float64, texts [][]uint32, dicts *dict.Set) (*FactTable, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	if len(coords) != len(schema.Dimensions) {
		return nil, fmt.Errorf("table: %d coordinate columns, schema has %d dimensions",
			len(coords), len(schema.Dimensions))
	}
	if len(measures) != len(schema.Measures) {
		return nil, fmt.Errorf("table: %d measure columns, schema has %d measures",
			len(measures), len(schema.Measures))
	}
	if len(texts) != len(schema.Texts) {
		return nil, fmt.Errorf("table: %d text columns, schema has %d", len(texts), len(schema.Texts))
	}
	if len(schema.Texts) > 0 && dicts == nil {
		return nil, fmt.Errorf("table: text columns need a dictionary set")
	}
	rows := 0
	if len(coords) > 0 {
		rows = len(coords[0])
	}
	for d, col := range coords {
		if len(col) != rows {
			return nil, fmt.Errorf("table: dimension %d has %d rows, want %d", d, len(col), rows)
		}
	}
	for m, col := range measures {
		if len(col) != rows {
			return nil, fmt.Errorf("table: measure %d has %d rows, want %d", m, len(col), rows)
		}
	}
	for i, col := range texts {
		if len(col) != rows {
			return nil, fmt.Errorf("table: text column %d has %d rows, want %d", i, len(col), rows)
		}
	}

	t := &FactTable{schema: schema, rows: rows, measures: measures, texts: texts, dicts: dicts}
	t.dimLevels = make([][][]uint32, len(schema.Dimensions))
	for d, spec := range schema.Dimensions {
		finest := spec.Finest()
		finestCard := spec.Levels[finest].Cardinality
		for _, c := range coords[d] {
			if int(c) >= finestCard {
				return nil, fmt.Errorf("table: dimension %q coordinate %d outside cardinality %d",
					spec.Name, c, finestCard)
			}
		}
		t.dimLevels[d] = make([][]uint32, len(spec.Levels))
		for l, lv := range spec.Levels {
			if l == finest {
				t.dimLevels[d][l] = coords[d]
				continue
			}
			ratio := uint32(finestCard / lv.Cardinality)
			col := make([]uint32, rows)
			for i, c := range coords[d] {
				col[i] = c / ratio
			}
			t.dimLevels[d][l] = col
		}
	}
	return t, nil
}
