package table

import (
	"fmt"
	"sort"
)

// GroupCol selects one grouping column: a (dimension, level) pair, or a
// text column when Text is set. Grouping by a text column groups by its
// dictionary codes (decode for display).
type GroupCol struct {
	Dim, Level int
	Text       bool
	TextIndex  int
}

// MaxGroupCols bounds a grouping key so it packs into one uint64
// (16 bits per component).
const MaxGroupCols = 4

// GroupScanRequest is a grouped table-scan aggregation: filter rows by the
// predicates, then aggregate the measure per distinct combination of the
// group columns.
type GroupScanRequest struct {
	ScanRequest
	GroupBy []GroupCol
}

// ColumnsAccessed extends eq. (12): grouping columns are read from global
// memory too.
func (r GroupScanRequest) ColumnsAccessed() int {
	return r.ScanRequest.ColumnsAccessed() + len(r.GroupBy)
}

// GroupKey packs up to MaxGroupCols 16-bit coordinates into a uint64.
type GroupKey = uint64

// PackKey builds a GroupKey from coordinates (each must be < 65536).
func PackKey(coords []uint32) GroupKey {
	var k GroupKey
	for _, c := range coords {
		k = k<<16 | GroupKey(c&0xFFFF)
	}
	return k
}

// UnpackKey reverses PackKey for n components.
func UnpackKey(k GroupKey, n int) []uint32 {
	out := make([]uint32, n)
	for i := n - 1; i >= 0; i-- {
		out[i] = uint32(k & 0xFFFF)
		k >>= 16
	}
	return out
}

// GroupRow is one group of a finalised grouped aggregation.
type GroupRow struct {
	Keys  []uint32
	Value float64
	Rows  int64
}

// Groups is a partial grouped aggregation state: group key → accumulator.
type Groups map[GroupKey]ScanResult

// GroupScanRange runs the grouped request over rows [lo, hi), returning
// partial per-group accumulators (pre-Finalize semantics, as in ScanRange).
func GroupScanRange(t *FactTable, req GroupScanRequest, lo, hi int) (Groups, error) {
	if len(req.GroupBy) == 0 {
		return nil, fmt.Errorf("table: grouped scan needs at least one group column")
	}
	if len(req.GroupBy) > MaxGroupCols {
		return nil, fmt.Errorf("table: at most %d group columns (got %d)", MaxGroupCols, len(req.GroupBy))
	}
	if lo < 0 || hi > t.rows || lo > hi {
		return nil, fmt.Errorf("table: scan range [%d,%d) outside [0,%d)", lo, hi, t.rows)
	}
	if req.Op != AggCount {
		if req.Measure < 0 || req.Measure >= len(t.measures) {
			return nil, fmt.Errorf("table: measure %d out of range", req.Measure)
		}
	}
	pcols := make([][]uint32, len(req.Predicates))
	for i := range req.Predicates {
		if err := validatePred(t, &req.Predicates[i]); err != nil {
			return nil, err
		}
		pcols[i] = predCol(t, req.Predicates[i])
	}
	gcols := make([][]uint32, len(req.GroupBy))
	for i, g := range req.GroupBy {
		col, err := validateGroupCol(t, g)
		if err != nil {
			return nil, err
		}
		gcols[i] = col
	}
	var meas []float64
	if req.Op != AggCount {
		meas = t.measures[req.Measure]
	}

	groups := make(Groups)
rowLoop:
	for r := lo; r < hi; r++ {
		for i := range req.Predicates {
			p := &req.Predicates[i]
			v := pcols[i][r]
			if len(p.Or) == 0 {
				if v < p.From || v > p.To {
					continue rowLoop
				}
			} else if !p.matches(v) {
				continue rowLoop
			}
		}
		var key GroupKey
		for _, gc := range gcols {
			key = key<<16 | GroupKey(gc[r]&0xFFFF)
		}
		acc := groups[key]
		first := acc.Rows == 0
		acc.Rows++
		switch req.Op {
		case AggSum, AggAvg:
			acc.Value += meas[r]
		case AggCount:
		case AggMin:
			if first || meas[r] < acc.Value {
				acc.Value = meas[r]
			}
		case AggMax:
			if first || meas[r] > acc.Value {
				acc.Value = meas[r]
			}
		}
		groups[key] = acc
	}
	return groups, nil
}

// MergeGroups folds partial grouped states (the per-SM reduction).
func MergeGroups(op AggOp, dst, src Groups) Groups {
	if dst == nil {
		dst = make(Groups, len(src))
	}
	for k, v := range src {
		dst[k] = Merge(op, dst[k], v)
	}
	return dst
}

// FinalizeGroups completes the aggregation and returns rows sorted by key
// (deterministic output order).
func FinalizeGroups(op AggOp, g Groups, nCols int) []GroupRow {
	keys := make([]GroupKey, 0, len(g))
	for k := range g {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]GroupRow, len(keys))
	for i, k := range keys {
		r := Finalize(op, g[k])
		out[i] = GroupRow{Keys: UnpackKey(k, nCols), Value: r.Value, Rows: r.Rows}
	}
	return out
}

// GroupScan runs a grouped request over the whole table sequentially.
func GroupScan(t *FactTable, req GroupScanRequest) ([]GroupRow, error) {
	g, err := GroupScanRange(t, req, 0, t.rows)
	if err != nil {
		return nil, err
	}
	return FinalizeGroups(req.Op, g, len(req.GroupBy)), nil
}
