//go:build race

package table

func init() { raceEnabled = true }
