package table

import (
	"math/rand"
	"testing"
)

// The fused differential suite: a FusedScanPlan / FusedGroupScanPlan must
// agree *exactly* — bit-identical values — with each member's own unfused
// plan over the same stripes. The fused kernel visits the same rows in the
// same ascending order per member, so == is the specification.

// fusedCol is one column pick of a compatibility set.
type fusedCol struct {
	text  bool
	tidx  int
	dim   int
	level int
	card  int
}

func randFusedCol(rng *rand.Rand, s *Schema) fusedCol {
	if rng.Intn(4) == 0 {
		return fusedCol{text: true, card: 30}
	}
	d := rng.Intn(len(s.Dimensions))
	l := rng.Intn(len(s.Dimensions[d].Levels))
	return fusedCol{dim: d, level: l, card: s.LevelCardinality(d, l)}
}

// randPredOn draws one predicate of a random shape confined to a fixed
// column — the member-side half of randPred.
func randPredOn(rng *rand.Rand, c fusedCol) RangePredicate {
	var p RangePredicate
	if c.text {
		p.Text = true
		p.TextIndex = c.tidx
	} else {
		p.Dim = c.dim
		p.Level = c.level
	}
	card := c.card
	switch rng.Intn(3) {
	case 0: // plain range, sometimes inverted (matches nothing)
		if rng.Intn(8) == 0 {
			p.From = uint32(rng.Intn(card)) + 1
			p.To = p.From - 1
			return p
		}
		a, b := uint32(rng.Intn(card)), uint32(rng.Intn(card))
		if a > b {
			a, b = b, a
		}
		p.From, p.To = a, b
	case 1: // range + Or intervals, overlaps and inversions allowed
		a, b := uint32(rng.Intn(card)), uint32(rng.Intn(card))
		if a > b {
			a, b = b, a
		}
		p.From, p.To = a, b
		for i, k := 0, rng.Intn(3)+1; i < k; i++ {
			c, d := uint32(rng.Intn(card)), uint32(rng.Intn(card))
			if rng.Intn(4) != 0 && c > d {
				c, d = d, c
			}
			p.Or = append(p.Or, CodeRange{From: c, To: d})
		}
	default: // points: IN-list of single codes
		p.From = uint32(rng.Intn(card))
		p.To = p.From
		for i, k := 0, rng.Intn(4); i < k; i++ {
			cc := uint32(rng.Intn(card))
			p.Or = append(p.Or, CodeRange{From: cc, To: cc})
		}
	}
	return p
}

// randFusedFamily draws a compatibility set of 0-3 columns (occasionally
// with a deliberate duplicate, exercising the multiset rule) and k member
// requests each filtering exactly that multiset in shuffled order.
func randFusedFamily(rng *rand.Rand, s *Schema, k int) []ScanRequest {
	nc := rng.Intn(4)
	cols := make([]fusedCol, 0, nc+1)
	for i := 0; i < nc; i++ {
		cols = append(cols, randFusedCol(rng, s))
	}
	if nc > 0 && rng.Intn(6) == 0 {
		cols = append(cols, cols[rng.Intn(len(cols))]) // duplicate column
	}
	reqs := make([]ScanRequest, k)
	for mi := range reqs {
		reqs[mi] = ScanRequest{
			Op:      AggOp(rng.Intn(5)),
			Measure: rng.Intn(len(s.Measures)),
		}
		for _, c := range cols {
			reqs[mi].Predicates = append(reqs[mi].Predicates, randPredOn(rng, c))
		}
		rng.Shuffle(len(reqs[mi].Predicates), func(a, b int) {
			reqs[mi].Predicates[a], reqs[mi].Predicates[b] = reqs[mi].Predicates[b], reqs[mi].Predicates[a]
		})
	}
	return reqs
}

func TestFusedScanDifferential(t *testing.T) {
	tables := diffTables(t)
	rng := rand.New(rand.NewSource(77))
	schema := diffSchema()
	for i := 0; i < 600; i++ {
		ft := tables[rng.Intn(len(tables))]
		k := rng.Intn(6) + 1
		reqs := randFusedFamily(rng, &schema, k)
		wantCells := make([]bool, k)
		for mi := range wantCells {
			wantCells[mi] = rng.Intn(3) == 0
		}
		fused, err := BindFusedScan(ft, reqs, wantCells)
		if err != nil {
			t.Fatalf("case %d: BindFusedScan: %v", i, err)
		}
		lo, hi := randStripe(rng, ft.Rows())
		lo2 := hi
		hi2 := lo2 + rng.Intn(ft.Rows()-lo2+1)

		states := make([]FusedState, k)
		if err := fused.RangeInto(lo, hi, states); err != nil {
			t.Fatalf("case %d: RangeInto: %v", i, err)
		}
		// Chain a second consecutive stripe through the same states:
		// continuous accumulation must match RangeFrom on each member.
		if err := fused.RangeInto(lo2, hi2, states); err != nil {
			t.Fatalf("case %d: RangeInto chain: %v", i, err)
		}
		for mi := range reqs {
			plan, err := BindScan(ft, reqs[mi])
			if err != nil {
				t.Fatalf("case %d member %d: BindScan: %v", i, mi, err)
			}
			want, err := plan.Range(lo, hi)
			if err != nil {
				t.Fatalf("case %d member %d: Range: %v", i, mi, err)
			}
			want, err = plan.RangeFrom(want, lo2, hi2)
			if err != nil {
				t.Fatalf("case %d member %d: RangeFrom: %v", i, mi, err)
			}
			got := states[mi].Scalar
			if fused.HasCells(mi) {
				got = FoldCells(reqs[mi].Op, states[mi].Cells)
				if states[mi].Scalar != (ScanResult{}) {
					t.Fatalf("case %d member %d: cells member accumulated a scalar too", i, mi)
				}
			}
			if got != want {
				t.Fatalf("case %d member %d: req=%+v stripes=[%d,%d)+[%d,%d)\nref=%+v\nfused=%+v cells=%v",
					i, mi, reqs[mi], lo, hi, lo2, hi2, want, got, fused.HasCells(mi))
			}
		}
	}
}

// TestFusedScanCellsSubInterval pins the subsumption property the result
// cache relies on: folding only the cells whose coordinates fall inside a
// narrower interval answers the narrowed query bit-identically to running
// it unfused — for the cell-eligible ops (count/min/max).
func TestFusedScanCellsSubInterval(t *testing.T) {
	ft := diffTables(t)[6] // 3*BatchSize + 213 rows
	rng := rand.New(rand.NewSource(99))
	for _, op := range []AggOp{AggCount, AggMin, AggMax} {
		req := ScanRequest{
			Op:      op,
			Measure: 0,
			Predicates: []RangePredicate{
				{Dim: 0, Level: 1, From: 4, To: 40}, // months
				{Dim: 1, Level: 0, From: 1, To: 5},  // regions
			},
		}
		fused, err := BindFusedScan(ft, []ScanRequest{req}, []bool{true})
		if err != nil {
			t.Fatal(err)
		}
		if !fused.HasCells(0) {
			t.Fatalf("op %v: cells not granted", op)
		}
		states := make([]FusedState, 1)
		if err := fused.RangeInto(0, ft.Rows(), states); err != nil {
			t.Fatal(err)
		}
		order := CanonicalPredOrder(req.Predicates)
		for trial := 0; trial < 40; trial++ {
			// Narrow each predicate interval to a random sub-interval.
			sub := req
			sub.Predicates = append([]RangePredicate(nil), req.Predicates...)
			for pi := range sub.Predicates {
				p := &sub.Predicates[pi]
				w := int(p.To-p.From) + 1
				a := p.From + uint32(rng.Intn(w))
				b := a + uint32(rng.Intn(int(p.To-a)+1))
				p.From, p.To = a, b
			}
			// Fold only the cells inside the sub-intervals, canonical
			// coordinate order.
			var acc ScanResult
			for _, key := range sortedGroupKeys(states[0].Cells) {
				coords := UnpackKey(key, len(order))
				in := true
				for ci, pi := range order {
					p := &sub.Predicates[pi]
					if coords[ci] < p.From || coords[ci] > p.To {
						in = false
						break
					}
				}
				if in {
					acc = Merge(op, acc, states[0].Cells[key])
				}
			}
			want, err := ScanRange(ft, sub, 0, ft.Rows())
			if err != nil {
				t.Fatal(err)
			}
			if acc != want {
				t.Fatalf("op %v trial %d: sub=%+v folded=%+v want=%+v", op, trial, sub.Predicates, acc, want)
			}
		}
	}
}

func sortedGroupKeys(g Groups) []GroupKey {
	keys := make([]GroupKey, 0, len(g))
	for k := range g {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// TestFusedScanCellsEligibility pins the soundness gate: rounding-order-
// sensitive ops and non-pure-range predicates never get cells.
func TestFusedScanCellsEligibility(t *testing.T) {
	ft := diffTables(t)[3]
	cases := []struct {
		name string
		req  ScanRequest
		want bool
	}{
		{"count pure range", ScanRequest{Op: AggCount,
			Predicates: []RangePredicate{{Dim: 0, Level: 0, From: 0, To: 2}}}, true},
		{"min two columns", ScanRequest{Op: AggMin, Measure: 0,
			Predicates: []RangePredicate{{Dim: 0, Level: 0, From: 0, To: 2}, {Dim: 1, Level: 1, From: 0, To: 30}}}, true},
		{"sum is order-sensitive", ScanRequest{Op: AggSum, Measure: 0,
			Predicates: []RangePredicate{{Dim: 0, Level: 0, From: 0, To: 2}}}, false},
		{"avg is order-sensitive", ScanRequest{Op: AggAvg, Measure: 0,
			Predicates: []RangePredicate{{Dim: 0, Level: 0, From: 0, To: 2}}}, false},
		{"text predicate", ScanRequest{Op: AggCount,
			Predicates: []RangePredicate{{Text: true, From: 0, To: 5}}}, false},
		{"or predicate", ScanRequest{Op: AggCount,
			Predicates: []RangePredicate{{Dim: 0, Level: 0, From: 0, To: 1, Or: []CodeRange{{From: 3, To: 3}}}}}, false},
		{"no predicates", ScanRequest{Op: AggCount}, false},
	}
	for _, c := range cases {
		fused, err := BindFusedScan(ft, []ScanRequest{c.req}, []bool{true})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got := fused.HasCells(0); got != c.want {
			t.Errorf("%s: HasCells=%v want %v", c.name, got, c.want)
		}
	}
}

func TestFusedScanIncompatible(t *testing.T) {
	ft := diffTables(t)[3]
	if _, err := BindFusedScan(ft, nil, nil); err == nil {
		t.Error("empty member set accepted")
	}
	// Different column sets must be rejected.
	reqs := []ScanRequest{
		{Op: AggCount, Predicates: []RangePredicate{{Dim: 0, Level: 0, From: 0, To: 2}}},
		{Op: AggCount, Predicates: []RangePredicate{{Dim: 1, Level: 0, From: 0, To: 2}}},
	}
	if _, err := BindFusedScan(ft, reqs, nil); err == nil {
		t.Error("mismatched column sets accepted")
	}
	// Same columns, different multiplicity: also incompatible.
	reqs[1].Predicates = []RangePredicate{
		{Dim: 0, Level: 0, From: 0, To: 2}, {Dim: 0, Level: 0, From: 1, To: 2},
	}
	if _, err := BindFusedScan(ft, reqs, nil); err == nil {
		t.Error("mismatched column multisets accepted")
	}
	// Validation errors surface like BindScan's.
	if _, err := BindFusedScan(ft, []ScanRequest{{Op: AggSum, Measure: 99}}, nil); err == nil {
		t.Error("bad measure accepted")
	}
	// State count is checked per call.
	fused, err := BindFusedScan(ft, []ScanRequest{{Op: AggCount}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := fused.RangeInto(0, ft.Rows(), make([]FusedState, 2)); err == nil {
		t.Error("wrong state count accepted")
	}
	if err := fused.RangeInto(-1, 3, make([]FusedState, 1)); err == nil {
		t.Error("negative lo accepted")
	}
}

func randFusedGroupFamily(rng *rand.Rand, s *Schema, k int) []GroupScanRequest {
	scans := randFusedFamily(rng, s, k)
	reqs := make([]GroupScanRequest, k)
	for mi := range reqs {
		reqs[mi].ScanRequest = scans[mi]
		for i, n := 0, rng.Intn(2)+1; i < n; i++ {
			if rng.Intn(4) == 0 {
				reqs[mi].GroupBy = append(reqs[mi].GroupBy, GroupCol{Text: true})
			} else {
				d := rng.Intn(len(s.Dimensions))
				l := rng.Intn(len(s.Dimensions[d].Levels))
				reqs[mi].GroupBy = append(reqs[mi].GroupBy, GroupCol{Dim: d, Level: l})
			}
		}
	}
	return reqs
}

func TestFusedGroupScanDifferential(t *testing.T) {
	tables := diffTables(t)
	rng := rand.New(rand.NewSource(171))
	schema := diffSchema()
	for i := 0; i < 300; i++ {
		ft := tables[rng.Intn(len(tables))]
		k := rng.Intn(4) + 1
		reqs := randFusedGroupFamily(rng, &schema, k)
		fused, err := BindFusedGroupScan(ft, reqs)
		if err != nil {
			t.Fatalf("case %d: BindFusedGroupScan: %v", i, err)
		}
		lo, hi := randStripe(rng, ft.Rows())
		got, err := fused.RangeInto(lo, hi, nil)
		if err != nil {
			t.Fatalf("case %d: RangeInto: %v", i, err)
		}
		for mi := range reqs {
			plan, err := BindGroupScan(ft, reqs[mi])
			if err != nil {
				t.Fatalf("case %d member %d: BindGroupScan: %v", i, mi, err)
			}
			want, err := plan.RangeInto(lo, hi, nil)
			if err != nil {
				t.Fatalf("case %d member %d: RangeInto: %v", i, mi, err)
			}
			if len(got[mi]) != len(want) {
				t.Fatalf("case %d member %d: %d groups, want %d", i, mi, len(got[mi]), len(want))
			}
			for key, w := range want {
				if g, ok := got[mi][key]; !ok || g != w {
					t.Fatalf("case %d member %d key %d: fused=%+v want=%+v", i, mi, key, got[mi][key], w)
				}
			}
		}
	}
}

func TestFusedGroupScanValidation(t *testing.T) {
	ft := diffTables(t)[3]
	// Missing group columns.
	if _, err := BindFusedGroupScan(ft, []GroupScanRequest{{ScanRequest: ScanRequest{Op: AggCount}}}); err == nil {
		t.Error("grouped member without group columns accepted")
	}
	// Mismatched predicate columns still rejected for grouped members.
	reqs := []GroupScanRequest{
		{ScanRequest: ScanRequest{Op: AggCount,
			Predicates: []RangePredicate{{Dim: 0, Level: 0, From: 0, To: 2}}},
			GroupBy: []GroupCol{{Dim: 1, Level: 0}}},
		{ScanRequest: ScanRequest{Op: AggCount},
			GroupBy: []GroupCol{{Dim: 1, Level: 0}}},
	}
	if _, err := BindFusedGroupScan(ft, reqs); err == nil {
		t.Error("mismatched predicate columns accepted for grouped members")
	}
}
