package table

import (
	"fmt"
	"io"

	"hybridolap/internal/binio"
	"hybridolap/internal/dict"
)

// Persistence format: magic, version, schema, then per-dimension finest
// coordinates (coarser levels are derived on load, exactly as Builder
// derives them), measures, and per-text-column dictionary entries plus
// code columns. A trailing CRC-32 guards the whole payload.
const (
	tableMagic   = "HOLT"
	tableVersion = 1
	// maxPersistRows bounds length prefixes while decoding.
	maxPersistRows = 1 << 31
)

// Save writes the fact table to w.
func (t *FactTable) Save(w io.Writer) error {
	bw := binio.NewWriter(w)
	bw.String(tableMagic)
	bw.U16(tableVersion)

	// Schema.
	s := &t.schema
	bw.U32(uint32(len(s.Dimensions)))
	for _, d := range s.Dimensions {
		bw.String(d.Name)
		bw.U32(uint32(len(d.Levels)))
		for _, l := range d.Levels {
			bw.String(l.Name)
			bw.U64(uint64(l.Cardinality))
		}
	}
	bw.U32(uint32(len(s.Measures)))
	for _, m := range s.Measures {
		bw.String(m.Name)
	}
	bw.U32(uint32(len(s.Texts)))
	for _, tc := range s.Texts {
		bw.String(tc.Name)
	}

	bw.U64(uint64(t.rows))
	// Finest-level coordinates per dimension.
	for d, dim := range s.Dimensions {
		bw.U32s(t.dimLevels[d][dim.Finest()])
	}
	for m := range s.Measures {
		bw.F64s(t.measures[m])
	}
	for i, tc := range s.Texts {
		d, ok := t.dicts.Get(tc.Name)
		if !ok {
			return fmt.Errorf("table: missing dictionary for %q", tc.Name)
		}
		bw.U64(uint64(d.Len()))
		for id := 0; id < d.Len(); id++ {
			str, _ := d.Decode(dict.ID(id))
			bw.String(str)
		}
		bw.U32s(t.texts[i])
	}
	return bw.Sum()
}

// Load reads a fact table written by Save.
func Load(r io.Reader) (*FactTable, error) {
	br := binio.NewReader(r)
	if magic := br.String(); magic != tableMagic {
		if br.Err() != nil {
			return nil, br.Err()
		}
		return nil, fmt.Errorf("table: bad magic %q", magic)
	}
	if v := br.U16(); v != tableVersion {
		if br.Err() != nil {
			return nil, br.Err()
		}
		return nil, fmt.Errorf("table: unsupported version %d", v)
	}

	var s Schema
	nd := int(br.U32())
	if br.Err() != nil {
		return nil, br.Err()
	}
	if nd > 64 {
		return nil, fmt.Errorf("table: %d dimensions exceeds limit", nd)
	}
	for i := 0; i < nd; i++ {
		var d DimensionSpec
		d.Name = br.String()
		nl := int(br.U32())
		if br.Err() != nil {
			return nil, br.Err()
		}
		if nl > 64 {
			return nil, fmt.Errorf("table: %d levels exceeds limit", nl)
		}
		for j := 0; j < nl; j++ {
			d.Levels = append(d.Levels, LevelSpec{
				Name:        br.String(),
				Cardinality: int(br.U64()),
			})
		}
		s.Dimensions = append(s.Dimensions, d)
	}
	nm := int(br.U32())
	if br.Err() != nil {
		return nil, br.Err()
	}
	if nm > 1024 {
		return nil, fmt.Errorf("table: %d measures exceeds limit", nm)
	}
	for i := 0; i < nm; i++ {
		s.Measures = append(s.Measures, MeasureSpec{Name: br.String()})
	}
	nt := int(br.U32())
	if br.Err() != nil {
		return nil, br.Err()
	}
	if nt > 1024 {
		return nil, fmt.Errorf("table: %d text columns exceeds limit", nt)
	}
	for i := 0; i < nt; i++ {
		s.Texts = append(s.Texts, TextSpec{Name: br.String()})
	}
	if err := br.Err(); err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("table: loaded schema invalid: %w", err)
	}

	rows := int(br.U64())
	if br.Err() != nil {
		return nil, br.Err()
	}
	if rows < 0 || rows > maxPersistRows {
		return nil, fmt.Errorf("table: row count %d out of range", rows)
	}

	t := &FactTable{schema: s, rows: rows}
	t.dimLevels = make([][][]uint32, nd)
	for d, dim := range s.Dimensions {
		finest := dim.Finest()
		coords := br.U32s(rows)
		if br.Err() != nil {
			return nil, br.Err()
		}
		if len(coords) != rows {
			return nil, fmt.Errorf("table: dimension %q has %d coords for %d rows", dim.Name, len(coords), rows)
		}
		card := uint32(dim.Levels[finest].Cardinality)
		for _, c := range coords {
			if c >= card {
				return nil, fmt.Errorf("table: coordinate %d exceeds cardinality %d in %q", c, card, dim.Name)
			}
		}
		t.dimLevels[d] = make([][]uint32, len(dim.Levels))
		t.dimLevels[d][finest] = coords
		for l := 0; l < finest; l++ {
			ratio := uint32(dim.Levels[finest].Cardinality / dim.Levels[l].Cardinality)
			col := make([]uint32, rows)
			for i, c := range coords {
				col[i] = c / ratio
			}
			t.dimLevels[d][l] = col
		}
	}
	t.measures = make([][]float64, nm)
	for m := 0; m < nm; m++ {
		t.measures[m] = br.F64s(rows)
		if br.Err() != nil {
			return nil, br.Err()
		}
		if len(t.measures[m]) != rows {
			return nil, fmt.Errorf("table: measure %d has %d values for %d rows", m, len(t.measures[m]), rows)
		}
	}
	if nt > 0 {
		t.dicts = dict.NewSet()
		t.texts = make([][]uint32, nt)
		for i := 0; i < nt; i++ {
			dl := int(br.U64())
			if br.Err() != nil {
				return nil, br.Err()
			}
			if dl < 0 || dl > maxPersistRows {
				return nil, fmt.Errorf("table: dictionary length %d out of range", dl)
			}
			entries := make([]string, dl)
			for j := range entries {
				entries[j] = br.String()
			}
			if br.Err() != nil {
				return nil, br.Err()
			}
			d, err := dict.NewSorted(entries)
			if err != nil {
				return nil, fmt.Errorf("table: dictionary for %q: %w", s.Texts[i].Name, err)
			}
			t.dicts.Put(s.Texts[i].Name, d)
			codes := br.U32s(rows)
			if br.Err() != nil {
				return nil, br.Err()
			}
			if len(codes) != rows {
				return nil, fmt.Errorf("table: text column %q has %d codes for %d rows", s.Texts[i].Name, len(codes), rows)
			}
			for _, c := range codes {
				if int(c) >= dl {
					return nil, fmt.Errorf("table: code %d exceeds dictionary of %d in %q", c, dl, s.Texts[i].Name)
				}
			}
			t.texts[i] = codes
		}
	}
	if err := br.CheckSum(); err != nil {
		return nil, err
	}
	return t, nil
}
